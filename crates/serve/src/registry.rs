//! The model registry: N named engines served concurrently, each behind
//! an atomically swappable slot.
//!
//! A [`ModelRegistry`] is built once (models registered in order; a
//! model's id is its registration index) and then shared immutably with
//! the server. What *does* change at runtime is the engine inside each
//! slot: [`ModelRegistry::swap`] replaces a model's compiled engine with
//! a freshly trained or re-compiled one while requests are in flight.
//! The swap is a single `Arc` store under a short write lock — in-flight
//! batches keep the engine they snapshotted, new batches see the new one,
//! and no request ever observes a half-updated model.
//!
//! A swap must preserve the model's wire shape (`num_features`,
//! `classes`): clients size their request rows from the hello, which is
//! sent once per connection, so a shape change would silently corrupt
//! every connected client. Shape-changing updates are a new model, not a
//! swap.
//!
//! Each slot carries a monotonically increasing **version**, read and
//! written atomically with the engine (same lock). Workers cache
//! per-model scratch buffers keyed by this version; engine scratch is
//! sized by the engine's compiled plan, so a swapped-in engine (same
//! wire shape, possibly different internal plan) invalidates the cache
//! by version rather than by `Arc` pointer identity (which could ABA
//! through the allocator).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use poetbin_bits::{BitVec, FeatureMatrix};
use poetbin_core::persist::{load_classifier, PersistError};
use poetbin_engine::{Backend, ClassifierEngine};
use poetbin_fpga::NetlistError;

use crate::protocol::{self, ModelInfo};

/// Per-model serving counters; monotonically increasing, lock-free reads.
#[derive(Debug, Default)]
pub struct ModelStats {
    received: AtomicU64,
    served: AtomicU64,
    batches: AtomicU64,
    swaps: AtomicU64,
    deadline_expired: AtomicU64,
}

impl ModelStats {
    /// Requests accepted off the wire for this model. A request counted
    /// here is normally later [`served`](Self::served) or
    /// [`deadline_expired`](Self::deadline_expired); the exception is a
    /// request shed by worker panic containment, which counts only in
    /// the global `overloaded` tally.
    pub fn received(&self) -> u64 {
        self.received.load(Ordering::Relaxed)
    }

    /// Predictions returned for this model.
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Engine batches that included this model.
    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Successful engine swaps on this slot.
    pub fn swaps(&self) -> u64 {
        self.swaps.load(Ordering::Relaxed)
    }

    /// Requests for this model shed with `STATUS_DEADLINE_EXCEEDED`
    /// after aging past the server's per-request deadline while queued.
    pub fn deadline_expired(&self) -> u64 {
        self.deadline_expired.load(Ordering::Relaxed)
    }

    /// Mean predictions per engine batch.
    pub fn mean_batch(&self) -> f64 {
        let batches = self.batches();
        if batches == 0 {
            return 0.0;
        }
        self.served() as f64 / batches as f64
    }

    pub(crate) fn add_received(&self, n: u64) {
        self.received.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn add_served_batch(&self, n: u64) {
        self.served.fetch_add(n, Ordering::Relaxed);
        self.batches.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_deadline_expired(&self, n: u64) {
        self.deadline_expired.fetch_add(n, Ordering::Relaxed);
    }
}

/// The swappable part of a model entry: the engine and the version that
/// names it. Kept in one lock so a snapshot can never pair an engine
/// with another engine's version (which would let a worker reuse scratch
/// sized for the wrong compiled plan).
struct Slot {
    engine: Arc<ClassifierEngine>,
    version: u64,
}

/// One registered model: its fixed wire shape plus the swappable engine.
struct ModelEntry {
    name: String,
    /// Wire shape, fixed for the lifetime of the registry (swaps must
    /// match it).
    num_features: usize,
    classes: usize,
    slot: RwLock<Slot>,
    stats: ModelStats,
}

/// Why a [`ModelRegistry::swap`] / [`ModelRegistry::swap_validated`] was
/// refused. Every variant leaves the slot — and live traffic — exactly
/// as it was: validation happens entirely before the commit.
#[derive(Debug)]
pub enum SwapError {
    /// No model with the given id is registered.
    UnknownModel(u16),
    /// The replacement engine's wire shape differs from the slot's.
    ShapeMismatch {
        /// The slot's fixed `(num_features, classes)`.
        expected: (usize, usize),
        /// The replacement engine's `(num_features, classes)`.
        found: (usize, usize),
    },
    /// The replacement model bytes failed to decode (corrupt, truncated,
    /// bad checksum, wrong magic, …).
    Decode(PersistError),
    /// The decoded replacement's lowered netlist failed compilation.
    Compile(NetlistError),
    /// The replacement reads features past the slot's fixed wire width.
    WidthTooNarrow {
        /// The slot's fixed row width.
        slot: usize,
        /// The width the replacement model actually needs.
        required: usize,
    },
    /// The compiled replacement failed the pre-commit canary: its
    /// spot-check predictions were out of range, non-deterministic, or
    /// it panicked during evaluation.
    Canary(String),
}

impl std::fmt::Display for SwapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwapError::UnknownModel(id) => write!(f, "no model with id {id} is registered"),
            SwapError::ShapeMismatch { expected, found } => write!(
                f,
                "replacement engine is {}×{} but the slot serves {}×{} \
                 (features × classes); a shape change is a new model, not a swap",
                found.0, found.1, expected.0, expected.1
            ),
            SwapError::Decode(e) => write!(f, "replacement model failed to decode: {e}"),
            SwapError::Compile(e) => write!(f, "replacement model failed to compile: {e}"),
            SwapError::WidthTooNarrow { slot, required } => write!(
                f,
                "slot serves {slot}-feature rows but the replacement reads feature {}",
                required - 1
            ),
            SwapError::Canary(msg) => write!(f, "replacement failed canary validation: {msg}"),
        }
    }
}

impl std::error::Error for SwapError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SwapError::Decode(e) => Some(e),
            SwapError::Compile(e) => Some(e),
            _ => None,
        }
    }
}

/// A fixed table of named models with hot-swappable engines.
#[derive(Default)]
pub struct ModelRegistry {
    models: Vec<ModelEntry>,
}

impl ModelRegistry {
    /// An empty registry; add models with [`register`](Self::register)
    /// before starting a server.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `engine` under `name` and returns its wire id (the
    /// registration index).
    ///
    /// # Panics
    ///
    /// Panics past `u16::MAX` models or when `name` exceeds the hello's
    /// 255-byte field.
    pub fn register(&mut self, name: impl Into<String>, engine: Arc<ClassifierEngine>) -> u16 {
        let name = name.into();
        assert!(name.len() <= 255, "model name over 255 bytes");
        let id = u16::try_from(self.models.len()).expect("too many models");
        // Pay any deferred backend codegen (the JIT assembles per block
        // width on first use) now, not on the first request batch.
        engine.prepare_all();
        self.models.push(ModelEntry {
            name,
            num_features: engine.num_features(),
            classes: engine.classes(),
            slot: RwLock::new(Slot { engine, version: 0 }),
            stats: ModelStats::default(),
        });
        id
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether no model is registered.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// The id of the model registered under `name`, if any.
    pub fn id_of(&self, name: &str) -> Option<u16> {
        self.models
            .iter()
            .position(|m| m.name == name)
            .map(|i| i as u16)
    }

    /// The model table as advertised in the connection hello.
    pub fn infos(&self) -> Vec<ModelInfo> {
        self.models
            .iter()
            .enumerate()
            .map(|(id, m)| ModelInfo {
                id: id as u16,
                num_features: m.num_features,
                classes: m.classes,
                name: m.name.clone(),
            })
            .collect()
    }

    /// Per-model serving counters.
    pub fn stats(&self, id: u16) -> Option<&ModelStats> {
        self.models.get(id as usize).map(|m| &m.stats)
    }

    /// The wire width a request for `id` must pack its row to.
    pub fn num_features(&self, id: u16) -> Option<usize> {
        self.models.get(id as usize).map(|m| m.num_features)
    }

    /// The largest request payload any registered model can legally
    /// produce — the frame-read limit for server connections.
    pub fn max_request_payload(&self) -> usize {
        self.models
            .iter()
            .map(|m| protocol::request_payload_len(m.num_features))
            .max()
            .unwrap_or(protocol::REQUEST_HEADER_LEN)
    }

    /// The execution backend the current engine in slot `id` actually
    /// runs on (`"jit"` or `"interp"`, after availability fallback);
    /// `None` for an unknown id. Surfaced per model in the stats
    /// listener.
    pub fn backend_name(&self, id: u16) -> Option<&'static str> {
        let m = self.models.get(id as usize)?;
        let slot = m.slot.read().expect("slot lock poisoned");
        Some(slot.engine.backend_name())
    }

    /// The current engine for `id` plus its slot version (for scratch
    /// caching); `None` for an unknown id. The returned `Arc` stays valid
    /// across concurrent swaps — it just becomes the *old* engine.
    pub fn snapshot(&self, id: u16) -> Option<(Arc<ClassifierEngine>, u64)> {
        let m = self.models.get(id as usize)?;
        let slot = m.slot.read().expect("slot lock poisoned");
        Some((Arc::clone(&slot.engine), slot.version))
    }

    /// Atomically replaces the engine in slot `id`. In-flight batches
    /// finish on the engine they snapshotted; later snapshots see the
    /// replacement.
    ///
    /// # Errors
    ///
    /// [`SwapError::UnknownModel`] for an unregistered id;
    /// [`SwapError::ShapeMismatch`] when the replacement's
    /// `(num_features, classes)` differ from the slot's — connected
    /// clients sized their requests from the hello, so the wire shape is
    /// frozen.
    pub fn swap(&self, id: u16, engine: Arc<ClassifierEngine>) -> Result<(), SwapError> {
        let m = self
            .models
            .get(id as usize)
            .ok_or(SwapError::UnknownModel(id))?;
        let found = (engine.num_features(), engine.classes());
        let expected = (m.num_features, m.classes);
        if found != expected {
            return Err(SwapError::ShapeMismatch { expected, found });
        }
        // As in `register`: codegen happens swap-side, never request-side.
        engine.prepare_all();
        {
            let mut slot = m.slot.write().expect("slot lock poisoned");
            slot.engine = engine;
            slot.version += 1;
        }
        m.stats.swaps.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Canary-validated hot-swap straight from model-file bytes: fully
    /// decodes the `POETBIN` payload, compiles it at the slot's fixed
    /// wire width on `backend`, checks its wire shape, pays all deferred
    /// codegen, and spot-checks it on seeded canary rows (predictions in
    /// class range, deterministic across two evaluations, no panic) —
    /// all **before** the atomic commit. Any failure returns a typed
    /// [`SwapError`] with the live engine untouched, so "rollback" is
    /// simply never having committed: a corrupt or torn model artifact
    /// can never disturb live traffic.
    ///
    /// # Errors
    ///
    /// [`SwapError::Decode`] / [`SwapError::Compile`] /
    /// [`SwapError::WidthTooNarrow`] / [`SwapError::ShapeMismatch`] /
    /// [`SwapError::Canary`] per the stage that refused, or
    /// [`SwapError::UnknownModel`] for an unregistered id.
    pub fn swap_validated(&self, id: u16, bytes: &[u8], backend: Backend) -> Result<(), SwapError> {
        let m = self
            .models
            .get(id as usize)
            .ok_or(SwapError::UnknownModel(id))?;
        let clf = load_classifier(bytes).map_err(SwapError::Decode)?;
        let required = clf.min_features();
        if m.num_features < required {
            return Err(SwapError::WidthTooNarrow {
                slot: m.num_features,
                required,
            });
        }
        let engine = ClassifierEngine::compile(&clf, m.num_features)
            .map(|e| e.with_backend(backend))
            .map_err(SwapError::Compile)?;
        let found = (engine.num_features(), engine.classes());
        let expected = (m.num_features, m.classes);
        if found != expected {
            return Err(SwapError::ShapeMismatch { expected, found });
        }
        let engine = Arc::new(engine);
        // Codegen and spot-check happen swap-side, pre-commit: a broken
        // replacement fails here, never on a request path.
        match catch_unwind(AssertUnwindSafe(|| {
            engine.prepare_all();
            canary_check(&engine)
        })) {
            Ok(Ok(())) => {}
            Ok(Err(msg)) => return Err(SwapError::Canary(msg)),
            Err(_) => {
                return Err(SwapError::Canary(
                    "replacement panicked during canary evaluation".into(),
                ))
            }
        }
        {
            let mut slot = m.slot.write().expect("slot lock poisoned");
            slot.engine = engine;
            slot.version += 1;
        }
        m.stats.swaps.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

/// Spot-checks a compiled replacement on seeded pseudo-random rows:
/// every prediction must land in class range and repeat bit-identically
/// on a second evaluation (the engine is a pure function of its inputs).
fn canary_check(engine: &ClassifierEngine) -> Result<(), String> {
    const CANARIES: usize = 8;
    let width = engine.num_features();
    let classes = engine.classes();
    let mut state = 0x6a09_e667_f3bc_c908u64; // fixed seed: canaries are reproducible
    let rows: Vec<BitVec> = (0..CANARIES)
        .map(|_| {
            let mut row = BitVec::zeros(width);
            for j in 0..width {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                row.set(j, (state >> 33) & 1 == 1);
            }
            row
        })
        .collect();
    let matrix = FeatureMatrix::from_rows(rows);
    let first = engine.predict(&matrix);
    if let Some(bad) = first.iter().find(|&&c| c >= classes) {
        return Err(format!(
            "canary prediction {bad} out of range for {classes} classes"
        ));
    }
    let second = engine.predict(&matrix);
    if first != second {
        return Err("canary predictions differ across evaluations".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use poetbin_bits::TruthTable;
    use poetbin_boost::{MatModule, RincModule, RincNode};
    use poetbin_core::{PoetBinClassifier, QuantizedSparseOutput, RincBank};
    use poetbin_dt::LevelWiseTree;

    fn engine(num_features: usize, classes: usize, flip: bool) -> Arc<ClassifierEngine> {
        let clf = classifier(num_features, classes, flip);
        Arc::new(ClassifierEngine::compile(&clf, num_features).expect("compiles"))
    }

    fn classifier(num_features: usize, classes: usize, flip: bool) -> PoetBinClassifier {
        let p = 2;
        let modules: Vec<RincNode> = (0..classes * p)
            .map(|i| {
                if i % 2 == 0 {
                    // Reads the last feature, pinning min_features to the
                    // full width (the WidthTooNarrow test depends on it).
                    RincNode::Tree(LevelWiseTree::from_parts(
                        vec![i % num_features, num_features - 1],
                        TruthTable::from_fn(p, |v| (v % 2 == 0) ^ flip),
                    ))
                } else {
                    RincNode::Module(RincModule::from_parts(
                        vec![
                            RincNode::Tree(LevelWiseTree::from_parts(
                                vec![(i + 2) % num_features, (i + 3) % num_features],
                                TruthTable::from_fn(p, |v| v == 3),
                            )),
                            RincNode::Tree(LevelWiseTree::from_parts(
                                vec![(i + 4) % num_features, (i + 5) % num_features],
                                TruthTable::from_fn(p, |v| v != 0),
                            )),
                        ],
                        MatModule::new(vec![0.6, 0.7]),
                        1,
                    ))
                }
            })
            .collect();
        let weights = (0..classes).map(|c| vec![3 + c as i32, -2]).collect();
        let biases = (0..classes).map(|c| c as i32 - 1).collect();
        let output = QuantizedSparseOutput::from_parts(p, 6, weights, biases, -8, 0);
        PoetBinClassifier::new(RincBank::from_modules(modules), output)
    }

    #[test]
    fn register_assigns_sequential_ids_and_infos_mirror_them() {
        let mut reg = ModelRegistry::new();
        assert!(reg.is_empty());
        assert_eq!(reg.register("alpha", engine(16, 2, false)), 0);
        assert_eq!(reg.register("beta", engine(24, 3, false)), 1);
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.id_of("beta"), Some(1));
        assert_eq!(reg.id_of("gamma"), None);
        let infos = reg.infos();
        assert_eq!(infos[0].id, 0);
        assert_eq!(infos[0].name, "alpha");
        assert_eq!(infos[0].num_features, 16);
        assert_eq!(infos[1].classes, 3);
        assert_eq!(reg.max_request_payload(), protocol::request_payload_len(24));
    }

    #[test]
    fn swap_replaces_the_engine_and_bumps_the_version() {
        let mut reg = ModelRegistry::new();
        let id = reg.register("m", engine(16, 2, false));
        let (before, v0) = reg.snapshot(id).unwrap();
        let replacement = engine(16, 2, true);
        reg.swap(id, Arc::clone(&replacement)).expect("same shape");
        let (after, v1) = reg.snapshot(id).unwrap();
        assert!(Arc::ptr_eq(&after, &replacement));
        assert!(!Arc::ptr_eq(&after, &before));
        assert_eq!(v1, v0 + 1);
        assert_eq!(reg.stats(id).unwrap().swaps(), 1);
        // The old snapshot stays usable for in-flight work.
        assert_eq!(before.num_features(), 16);
    }

    #[test]
    fn swap_validated_commits_a_good_model_from_bytes() {
        use poetbin_core::persist::{save_classifier, ModelFormat};
        let mut reg = ModelRegistry::new();
        let id = reg.register("m", engine(16, 2, false));
        let bytes = save_classifier(&classifier(16, 2, true), ModelFormat::PoetBin2);
        reg.swap_validated(id, &bytes, Backend::default())
            .expect("valid replacement commits");
        let (_, v) = reg.snapshot(id).unwrap();
        assert_eq!(v, 1);
        assert_eq!(reg.stats(id).unwrap().swaps(), 1);
    }

    #[test]
    fn swap_validated_refuses_torn_bytes_without_touching_the_slot() {
        use poetbin_core::persist::{save_classifier, ModelFormat};
        let mut reg = ModelRegistry::new();
        let id = reg.register("m", engine(16, 2, false));
        let (live, v0) = reg.snapshot(id).unwrap();
        let good = save_classifier(&classifier(16, 2, true), ModelFormat::PoetBin2);
        for torn in crate::fault::torn_copies(&good, 0xc0ffee, 24) {
            let err = reg
                .swap_validated(id, &torn, Backend::default())
                .expect_err("torn bytes must be refused");
            assert!(
                matches!(err, SwapError::Decode(_)),
                "torn input should fail decode, got: {err}"
            );
        }
        let (after, v1) = reg.snapshot(id).unwrap();
        assert!(Arc::ptr_eq(&after, &live), "live engine untouched");
        assert_eq!(v1, v0, "version untouched");
        assert_eq!(reg.stats(id).unwrap().swaps(), 0);
    }

    #[test]
    fn swap_validated_refuses_shape_and_width_mismatches() {
        use poetbin_core::persist::{save_classifier, ModelFormat};
        let mut reg = ModelRegistry::new();
        let id = reg.register("m", engine(16, 2, false));
        // Needs more features than the slot's width.
        let wide = save_classifier(&classifier(32, 2, false), ModelFormat::PoetBin2);
        assert!(matches!(
            reg.swap_validated(id, &wide, Backend::default()),
            Err(SwapError::WidthTooNarrow { slot: 16, .. })
        ));
        // Same width, different class count.
        let reshaped = save_classifier(&classifier(16, 3, false), ModelFormat::PoetBin2);
        assert!(matches!(
            reg.swap_validated(id, &reshaped, Backend::default()),
            Err(SwapError::ShapeMismatch { .. })
        ));
        let (_, v) = reg.snapshot(id).unwrap();
        assert_eq!(v, 0, "every refusal leaves the slot untouched");
    }

    #[test]
    fn swap_rejects_unknown_ids_and_shape_changes() {
        let mut reg = ModelRegistry::new();
        let id = reg.register("m", engine(16, 2, false));
        assert!(matches!(
            reg.swap(99, engine(16, 2, false)),
            Err(SwapError::UnknownModel(99))
        ));
        assert!(matches!(
            reg.swap(id, engine(24, 2, false)),
            Err(SwapError::ShapeMismatch { .. })
        ));
        assert!(matches!(
            reg.swap(id, engine(16, 3, false)),
            Err(SwapError::ShapeMismatch { .. })
        ));
        // The failed swaps left the slot untouched.
        let (eng, v) = reg.snapshot(id).unwrap();
        assert_eq!(eng.num_features(), 16);
        assert_eq!(v, 0);
        assert_eq!(reg.stats(id).unwrap().swaps(), 0);
    }
}
