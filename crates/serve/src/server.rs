//! The serving core: one epoll poller thread owning every socket, N
//! engine worker threads draining bounded per-worker queues, and the
//! orchestration (startup, stats, two-phase shutdown) tying them
//! together.
//!
//! Thread layout (contrast with the old thread-per-connection design,
//! which spent two threads on every socket):
//!
//! * **`poetbin-poller`** — the event loop
//!   ([`event_loop`](crate::event_loop) module): nonblocking accept,
//!   read, frame reassembly, request decode, shard dispatch (or typed
//!   shed when every queue is full), response writes, and the stats
//!   endpoint. The only thread that touches a socket.
//! * **`poetbin-worker-{i}`** — one per [`ServeConfig::workers`]; each
//!   owns one bounded [`Shard`], blocks on it for the next micro-batch
//!   (deadline-aware linger), evaluates it on the compiled engine, and
//!   hands completions back to the poller through a channel + waker.
//!
//! Shutdown is two-phase so no response is dropped: `stop` closes the
//! shards (workers drain what is queued, then exit) and stops the poller
//! accepting/parsing; once the workers are joined, `finishing` lets the
//! poller route the last completions, flush every socket, and exit.

use std::collections::HashMap;
use std::fmt;
use std::io;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use epoll::Waker;
use poetbin_bits::pack_block_rows_into;
use poetbin_core::persist::{load_classifier_from, PersistError};
use poetbin_engine::{Backend, ClassifierEngine, Scratch, MAX_BLOCK_WORDS};
use poetbin_fpga::NetlistError;

use crate::batcher::{Pending, Shard};
use crate::event_loop::{Completion, EventLoop, EventLoopParts};
use crate::fault::{FaultInjector, FaultPlan, InjectedPanic};
use crate::protocol::{
    STATUS_DEADLINE_EXCEEDED, STATUS_OK, STATUS_OVERLOADED, STATUS_UNKNOWN_MODEL,
};
use crate::registry::ModelRegistry;

/// Tuning knobs for [`Server::start`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Engine worker threads, each draining its own bounded queue shard.
    /// Each owns one reusable [`poetbin_engine::Scratch`] per model; more
    /// workers overlap tape evaluation with request decode on multi-core
    /// hosts.
    pub workers: usize,
    /// How long a worker holding a partial batch waits for stragglers
    /// before serving it, measured **from the oldest queued request's
    /// arrival** (a worker that was busy has already spent its linger and
    /// serves the backlog immediately). Zero disables coalescing entirely
    /// (every request that finds an idle worker is served alone).
    pub linger: Duration,
    /// Requests per queue drain, at most 512 (64 lanes × the engine's
    /// 8-word lane blocks). A worker drains up to this many requests,
    /// groups them by model, packs each group into a lane-word block and
    /// evaluates it in one blocked pass
    /// ([`ClassifierEngine::predict_block_into`]), the final partial word
    /// masked.
    pub max_batch: usize,
    /// Capacity of each worker's pending queue. A request arriving while
    /// **every** shard is full is shed with
    /// [`STATUS_OVERLOADED`](crate::protocol::STATUS_OVERLOADED) instead
    /// of queueing — this is what bounds server memory and the queueing
    /// delay of accepted requests under open-loop overload.
    pub queue_cap: usize,
    /// Per-connection write backlog (bytes) past which the server stops
    /// *reading* that connection until the backlog halves. A peer that
    /// does not consume its responses therefore stops generating engine
    /// work instead of growing an unbounded buffer.
    pub write_buf_cap: usize,
    /// Where to bind the plain-text stats/health listener. `None` binds
    /// an ephemeral port on the data listener's address (see
    /// [`Server::stats_addr`]).
    pub stats_addr: Option<SocketAddr>,
    /// Kernel socket buffer clamp (`SO_SNDBUF`/`SO_RCVBUF`, bytes) for
    /// accepted data connections; `None` keeps the kernel defaults.
    /// Bounding these caps the kernel-side memory a slow or dead peer
    /// can pin, and makes the [`write_buf_cap`](Self::write_buf_cap)
    /// read-pausing backpressure engage promptly instead of after
    /// megabytes of kernel buffering.
    pub sock_buf: Option<usize>,
    /// Per-request deadline, measured from the moment the event loop
    /// decoded the request. A request still queued past its deadline is
    /// shed with
    /// [`STATUS_DEADLINE_EXCEEDED`](crate::protocol::STATUS_DEADLINE_EXCEEDED)
    /// instead of evaluated — under transient overload the server sheds
    /// stale work rather than burning engine time on answers nobody is
    /// still waiting for. `None` (the default) disables deadlines.
    pub deadline: Option<Duration>,
    /// Idle-connection reaping. A data connection with no in-flight
    /// requests whose last *productive* activity (a complete parsed
    /// frame, or forward progress flushing its responses) is older than
    /// this is closed — which evicts slow-loris peers dripping partial
    /// frames, clients that never read their responses, and plain idle
    /// sockets. `None` (the default) never reaps.
    pub idle_timeout: Option<Duration>,
    /// Deterministic fault-injection plan for chaos testing; `None` (the
    /// default) injects nothing and costs one branch per I/O call.
    pub fault: Option<FaultPlan>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 2,
            linger: Duration::from_micros(200),
            max_batch: 64 * MAX_BLOCK_WORDS,
            queue_cap: 4096,
            write_buf_cap: 256 * 1024,
            stats_addr: None,
            sock_buf: None,
            deadline: None,
            idle_timeout: None,
            fault: None,
        }
    }
}

/// Monotonic whole-server counters; read them through [`Server::stats`].
/// Per-model counters live in the registry
/// ([`ModelRegistry::stats`](crate::ModelRegistry::stats)).
///
/// The counters reconcile: every request frame taken off the wire is
/// counted exactly once on the outcome side, so at quiescence
///
/// ```text
/// received == served + overloaded + deadline_expired
///           + rejected + protocol_errors
/// ```
///
/// holds — even across worker panics, injected faults, and a shutdown
/// that sheds its tail. The chaos suite replays seeded fault schedules
/// against exactly this equation.
#[derive(Debug, Default)]
pub struct ServerStats {
    pub(crate) received: AtomicU64,
    pub(crate) served: AtomicU64,
    pub(crate) batches: AtomicU64,
    pub(crate) connections: AtomicU64,
    pub(crate) protocol_errors: AtomicU64,
    pub(crate) rejected: AtomicU64,
    pub(crate) overloaded: AtomicU64,
    pub(crate) deadline_expired: AtomicU64,
    pub(crate) worker_panics: AtomicU64,
    pub(crate) reaped: AtomicU64,
}

impl ServerStats {
    /// Complete request frames consumed off the wire so far (all
    /// models), plus one for each connection whose stream became
    /// unparseable — the poisoned tail counts as a single final unit so
    /// [`protocol_errors`](Self::protocol_errors) reconciles. Every unit
    /// counted here later lands in exactly one of
    /// [`served`](Self::served), [`overloaded`](Self::overloaded),
    /// [`deadline_expired`](Self::deadline_expired),
    /// [`rejected`](Self::rejected), or
    /// [`protocol_errors`](Self::protocol_errors).
    pub fn received(&self) -> u64 {
        self.received.load(Ordering::Relaxed)
    }

    /// Predictions routed back toward clients so far (all models).
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Engine tape passes (per-model batch groups) evaluated so far.
    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Connections accepted so far.
    pub fn connections(&self) -> u64 {
        self.connections.load(Ordering::Relaxed)
    }

    /// Connections whose *stream* became unparseable (a length prefix
    /// past the server's frame limit) and were therefore closed.
    /// Malformed but well-framed requests are answered, not dropped —
    /// see [`rejected`](Self::rejected).
    pub fn protocol_errors(&self) -> u64 {
        self.protocol_errors.load(Ordering::Relaxed)
    }

    /// Typed error responses sent (unknown model id, wrong row width,
    /// short request payload). The connection survives these.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Well-formed requests shed with
    /// [`STATUS_OVERLOADED`](crate::protocol::STATUS_OVERLOADED) because
    /// every bounded queue shard was full (or closing under shutdown),
    /// or because a worker panic shed the requests it was holding.
    pub fn overloaded(&self) -> u64 {
        self.overloaded.load(Ordering::Relaxed)
    }

    /// Accepted requests shed with
    /// [`STATUS_DEADLINE_EXCEEDED`](crate::protocol::STATUS_DEADLINE_EXCEEDED)
    /// because they aged past [`ServeConfig::deadline`] while queued.
    pub fn deadline_expired(&self) -> u64 {
        self.deadline_expired.load(Ordering::Relaxed)
    }

    /// Worker batch evaluations that panicked and were contained: the
    /// worker shed the requests it was holding (they count under
    /// [`overloaded`](Self::overloaded)) and kept running instead of
    /// wedging the poller.
    pub fn worker_panics(&self) -> u64 {
        self.worker_panics.load(Ordering::Relaxed)
    }

    /// Idle data connections closed by the reaper
    /// ([`ServeConfig::idle_timeout`]): slow-loris peers, clients that
    /// never read responses, and plain idle sockets.
    pub fn reaped(&self) -> u64 {
        self.reaped.load(Ordering::Relaxed)
    }

    /// Mean requests per evaluated batch — the lane-occupancy figure the
    /// linger setting exists to maximise.
    pub fn mean_batch(&self) -> f64 {
        let batches = self.batches();
        if batches == 0 {
            0.0
        } else {
            self.served() as f64 / batches as f64
        }
    }
}

/// Failure to turn a model file into a compiled serving engine.
#[derive(Debug)]
pub enum LoadError {
    /// The model file (either `POETBIN` format) failed to decode.
    Persist(PersistError),
    /// The decoded classifier's lowered netlist failed compilation.
    Compile(NetlistError),
    /// The requested width is narrower than some tree's feature index.
    WidthTooNarrow {
        /// Width the caller asked for.
        requested: usize,
        /// Width the model actually needs.
        required: usize,
    },
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Persist(e) => write!(f, "loading model: {e}"),
            LoadError::Compile(e) => write!(f, "compiling model: {e}"),
            LoadError::WidthTooNarrow {
                requested,
                required,
            } => write!(
                f,
                "requested width {requested} but the model reads feature {}",
                required - 1
            ),
        }
    }
}

impl std::error::Error for LoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoadError::Persist(e) => Some(e),
            LoadError::Compile(e) => Some(e),
            LoadError::WidthTooNarrow { .. } => None,
        }
    }
}

/// Loads a model file (`POETBIN1` or `POETBIN2`, sniffed from the magic)
/// and compiles it once for serving, on the default
/// (auto-selected) execution backend. Use [`load_engine_with`] to pin
/// one.
///
/// `num_features` fixes the row width clients must send; `None` uses the
/// narrowest width the model supports
/// ([`poetbin_core::PoetBinClassifier::min_features`]).
///
/// # Errors
///
/// Returns [`LoadError`] when the file fails to decode, the width is
/// narrower than the model needs, or netlist compilation fails.
pub fn load_engine(
    path: impl AsRef<Path>,
    num_features: Option<usize>,
) -> Result<ClassifierEngine, LoadError> {
    load_engine_with(path, num_features, Backend::default())
}

/// [`load_engine`] with an explicit execution backend.
///
/// The worker loop eagerly compiles ([`poetbin_engine::Engine::prepare`])
/// every width the batcher can produce before taking traffic, so a JIT
/// backend never pays codegen on a request path. What actually runs
/// after availability fallback is reported per model in the stats
/// listener's `model.*.backend` lines.
///
/// # Errors
///
/// As [`load_engine`].
pub fn load_engine_with(
    path: impl AsRef<Path>,
    num_features: Option<usize>,
    backend: Backend,
) -> Result<ClassifierEngine, LoadError> {
    let clf = load_classifier_from(path).map_err(LoadError::Persist)?;
    let required = clf.min_features();
    let width = num_features.unwrap_or(required);
    if width < required {
        return Err(LoadError::WidthTooNarrow {
            requested: width,
            required,
        });
    }
    ClassifierEngine::compile(&clf, width)
        .map(|engine| engine.with_backend(backend))
        .map_err(LoadError::Compile)
}

/// A running inference server; dropping or [`Server::shutdown`]ing it
/// stops every thread.
///
/// A single poller thread owns every socket: it accepts nonblocking
/// connections, reassembles request frames from per-connection read
/// buffers, and dispatches decoded requests round-robin into the
/// workers' **bounded** queue shards — answering
/// [`STATUS_OVERLOADED`](crate::protocol::STATUS_OVERLOADED) immediately
/// when every shard is full, so neither queue memory nor the queueing
/// delay of accepted requests grows without bound. Worker threads
/// blocked on their shard coalesce up to `max_batch ≤ 512` requests
/// (linger measured from the oldest request's arrival), group them by
/// model, and evaluate each group as a single packed lane-word block in
/// one blocked tape pass — each model's immutable compiled plan is
/// shared behind an [`Arc`], so every worker evaluates the same tape
/// with its own scratch. Completions flow back to the poller over a
/// channel (an `eventfd` waker interrupts its `epoll_wait`), which
/// writes responses as far as each socket allows and buffers the rest —
/// pausing reads on any connection whose peer stops draining its
/// responses.
///
/// A second, plain-text listener ([`Server::stats_addr`]) answers every
/// connection with a `key value` health report (counters, queue depths,
/// per-model lines) and closes.
///
/// Engines can be hot-swapped through the shared [`ModelRegistry`] while
/// the server runs: batches in flight finish on the engine they
/// snapshotted, later batches use the replacement.
///
/// # Example
///
/// ```no_run
/// use std::sync::Arc;
/// use poetbin_serve::{Client, ModelRegistry, ServeConfig, Server};
/// # let engine: poetbin_engine::ClassifierEngine = unimplemented!();
/// # let row: poetbin_bits::BitVec = unimplemented!();
///
/// let mut registry = ModelRegistry::new();
/// registry.register("default", Arc::new(engine));
/// let server = Server::start(Arc::new(registry), "127.0.0.1:0", ServeConfig::default())?;
/// let mut client = Client::connect(server.local_addr())?;
/// let class = client.predict(&row)?;
/// server.shutdown();
/// # Ok::<(), std::io::Error>(())
/// ```
pub struct Server {
    addr: SocketAddr,
    stats_addr: SocketAddr,
    registry: Arc<ModelRegistry>,
    shards: Arc<Vec<Shard>>,
    stats: Arc<ServerStats>,
    stopping: Arc<AtomicBool>,
    finishing: Arc<AtomicBool>,
    waker: Arc<Waker>,
    worker_threads: Vec<JoinHandle<()>>,
    poller_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) plus the stats
    /// listener, and starts the poller and `config.workers` engine
    /// workers serving every model in `registry`.
    ///
    /// # Errors
    ///
    /// Propagates bind, epoll/eventfd setup, or thread-spawn failure.
    ///
    /// # Panics
    ///
    /// Panics if the registry is empty, `config.workers == 0`,
    /// `config.max_batch` is not in `1..=512`, or a capacity is zero.
    pub fn start(
        registry: Arc<ModelRegistry>,
        addr: impl ToSocketAddrs,
        config: ServeConfig,
    ) -> io::Result<Server> {
        assert!(!registry.is_empty(), "registry has no models to serve");
        assert!(config.workers > 0, "need at least one worker");
        assert!(
            (1..=64 * MAX_BLOCK_WORDS).contains(&config.max_batch),
            "max_batch must be in 1..={}",
            64 * MAX_BLOCK_WORDS
        );
        assert!(config.queue_cap > 0, "queue_cap must be positive");
        assert!(config.write_buf_cap > 0, "write_buf_cap must be positive");

        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stats_listener = TcpListener::bind(
            config
                .stats_addr
                .unwrap_or_else(|| SocketAddr::new(addr.ip(), 0)),
        )?;
        let stats_addr = stats_listener.local_addr()?;

        let shards: Arc<Vec<Shard>> = Arc::new(
            (0..config.workers)
                .map(|_| Shard::new(config.queue_cap))
                .collect(),
        );
        let stats = Arc::new(ServerStats::default());
        let stopping = Arc::new(AtomicBool::new(false));
        let finishing = Arc::new(AtomicBool::new(false));
        let waker = Arc::new(Waker::new()?);
        let fault = config
            .fault
            .clone()
            .map(|plan| Arc::new(FaultInjector::new(plan)));
        let (completion_tx, completion_rx) = mpsc::channel::<Completion>();

        // Build the event loop up front so fd registration failures
        // surface here instead of inside a silent thread.
        let event_loop = EventLoop::new(EventLoopParts {
            listener,
            stats_listener,
            registry: Arc::clone(&registry),
            shards: Arc::clone(&shards),
            stats: Arc::clone(&stats),
            waker: Arc::clone(&waker),
            completions: completion_rx,
            stopping: Arc::clone(&stopping),
            finishing: Arc::clone(&finishing),
            write_buf_cap: config.write_buf_cap,
            sock_buf: config.sock_buf,
            idle_timeout: config.idle_timeout,
            fault: fault.clone(),
        })?;

        let mut worker_threads = Vec::with_capacity(config.workers);
        for i in 0..config.workers {
            let shards = Arc::clone(&shards);
            let worker = Worker {
                registry: Arc::clone(&registry),
                stats: Arc::clone(&stats),
                completions: completion_tx.clone(),
                waker: Arc::clone(&waker),
                max_batch: config.max_batch,
                linger: config.linger,
                deadline: config.deadline,
                fault: fault.clone(),
            };
            worker_threads.push(
                std::thread::Builder::new()
                    .name(format!("poetbin-worker-{i}"))
                    .spawn(move || worker.run(&shards[i]))?,
            );
        }
        // Only workers hold senders now: once they exit, the poller's
        // drain sees the disconnect and knows nothing more is coming.
        drop(completion_tx);

        let poller_thread = std::thread::Builder::new()
            .name("poetbin-poller".into())
            .spawn(move || event_loop.run())?;

        Ok(Server {
            addr,
            stats_addr,
            registry,
            shards,
            stats,
            stopping,
            finishing,
            waker,
            worker_threads,
            poller_thread: Some(poller_thread),
        })
    }

    /// The bound data address (with the real port when started on port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The stats/health listener's address. Any connection to it is
    /// answered with a plain-text `key value` report (global counters,
    /// per-shard queue depths, per-model lines) behind a minimal HTTP
    /// response header, then closed.
    pub fn stats_addr(&self) -> SocketAddr {
        self.stats_addr
    }

    /// The registry this server routes requests through — the handle for
    /// hot-swapping engines and reading per-model stats.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// The server's monotonic counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// An owned handle to the counters that outlives the server — for
    /// reading the final tallies after [`shutdown`](Self::shutdown)
    /// consumes it.
    pub fn stats_handle(&self) -> Arc<ServerStats> {
        Arc::clone(&self.stats)
    }

    /// Requests currently parked across all queue shards (diagnostics
    /// only — stale by the time the caller reads it). Bounded by
    /// `workers × queue_cap` by construction.
    pub fn queue_depth(&self) -> usize {
        self.shards.iter().map(|s| s.depth()).sum()
    }

    /// Stops accepting, drains the queues, flushes every response, and
    /// joins every thread. Already-queued requests are still evaluated;
    /// their responses reach any connection that is still open.
    pub fn shutdown(mut self) {
        self.stop();
        // Workers drain their closed shards, push the last completions,
        // and exit.
        for t in self.worker_threads.drain(..) {
            let _ = t.join();
        }
        // Now every completion is in the channel: let the poller route
        // and flush them, then exit.
        self.finishing.store(true, Ordering::SeqCst);
        let _ = self.waker.wake();
        if let Some(t) = self.poller_thread.take() {
            let _ = t.join();
        }
    }

    /// Graceful drain with a watchdog: like [`shutdown`](Self::shutdown)
    /// — stop accepting, evaluate what is queued, flush every response —
    /// but bounded by `grace`. Returns `true` when every thread joined
    /// within the budget; `false` abandons whatever is still wedged
    /// (those detached threads die with the process — the watchdog
    /// guarantees the *caller* makes progress, not that a stuck thread
    /// is reclaimed).
    pub fn shutdown_within(mut self, grace: Duration) -> bool {
        let deadline = Instant::now() + grace;
        self.stop();
        let mut workers = std::mem::take(&mut self.worker_threads);
        let workers_done = join_all_within(&mut workers, deadline);
        // Even with a wedged worker, let the poller flush what it has:
        // `finishing` drives its exit without waiting on the channel.
        self.finishing.store(true, Ordering::SeqCst);
        let _ = self.waker.wake();
        let mut poller: Vec<JoinHandle<()>> = self.poller_thread.take().into_iter().collect();
        // Give the poller at least a tick even when the workers ate the
        // whole grace budget.
        let poller_by = deadline.max(Instant::now() + Duration::from_millis(10));
        let poller_done = join_all_within(&mut poller, poller_by);
        workers_done && poller_done
    }

    fn stop(&self) {
        self.stopping.store(true, Ordering::SeqCst);
        for shard in self.shards.iter() {
            shard.close();
        }
        let _ = self.waker.wake();
    }
}

/// Joins every handle that finishes before `deadline`; handles still
/// running then are dropped (detached). Returns whether all joined.
fn join_all_within(handles: &mut Vec<JoinHandle<()>>, deadline: Instant) -> bool {
    loop {
        let mut i = 0;
        while i < handles.len() {
            if handles[i].is_finished() {
                let _ = handles.swap_remove(i).join();
            } else {
                i += 1;
            }
        }
        if handles.is_empty() {
            return true;
        }
        if Instant::now() >= deadline {
            handles.clear();
            return false;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // `shutdown` consumed-and-dropped lands here too; both flags are
        // already set then and the extra wake is harmless. A bare drop
        // stops every thread without joining it.
        if !self.stopping.load(Ordering::SeqCst) {
            self.stop();
        }
        self.finishing.store(true, Ordering::SeqCst);
        let _ = self.waker.wake();
    }
}

/// How one model group's evaluation ended (inside the panic boundary).
enum GroupEval {
    /// `preds[..lanes]` holds the argmaxes; account and send `STATUS_OK`.
    Served,
    /// The registry had no such model (defensive — the poller validates
    /// ids, and registered models are never removed).
    UnknownModel,
}

/// One engine worker: block on this worker's shard for up to a lane
/// block's worth of requests (`64 · B`), shed anything that aged past
/// the deadline, group the rest by model, pack each group and evaluate
/// it in one blocked tape pass, hand each argmax to the poller as a
/// [`Completion`] and ring the waker.
///
/// Each group is evaluated inside a panic boundary: a panic (engine bug,
/// or an injected chaos fault) is contained to the batch in hand — the
/// worker sheds the unanswered requests with `STATUS_OVERLOADED`, drops
/// its scratch cache, and keeps serving instead of wedging the poller.
/// Completions are only sent *after* the boundary, so a panicked group
/// never double-answers: every request is answered exactly once, as a
/// prediction or as a typed shed.
///
/// Scratch buffers are cached per model and invalidated by the slot
/// version, so a hot-swapped engine (whose compiled plan may differ in
/// size) never sees scratch sized for its predecessor.
struct Worker {
    registry: Arc<ModelRegistry>,
    stats: Arc<ServerStats>,
    completions: mpsc::Sender<Completion>,
    waker: Arc<Waker>,
    max_batch: usize,
    linger: Duration,
    deadline: Option<Duration>,
    fault: Option<Arc<FaultInjector>>,
}

impl Worker {
    fn run(&self, shard: &Shard) {
        let mut scratch_cache: HashMap<u16, (u64, Scratch)> = HashMap::new();
        let mut batch: Vec<Pending> = Vec::with_capacity(self.max_batch);
        let mut expired: Vec<Pending> = Vec::new();
        let mut blocks: Vec<u64> = Vec::new();
        let mut preds = vec![0usize; self.max_batch];
        while shard.pop_batch(
            self.max_batch,
            self.linger,
            self.deadline,
            &mut batch,
            &mut expired,
        ) {
            if !expired.is_empty() {
                self.shed(&expired, STATUS_DEADLINE_EXCEEDED);
            }
            if batch.is_empty() {
                continue;
            }
            // Group by model; stable, so FIFO order survives within a model.
            batch.sort_by_key(|p| p.model_id);
            let mut idx = 0;
            while idx < batch.len() {
                let model_id = batch[idx].model_id;
                let split = batch[idx..].partition_point(|p| p.model_id == model_id);
                let group = &batch[idx..idx + split];
                // The panic boundary. `AssertUnwindSafe` is sound here:
                // on unwind the scratch cache is discarded wholesale and
                // `blocks`/`preds` are fully overwritten before any
                // later read, so no torn state is ever observed.
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    self.eval_group(model_id, group, &mut scratch_cache, &mut blocks, &mut preds)
                }));
                match outcome {
                    Ok(GroupEval::Served) => {
                        let lanes = group.len();
                        // Account the batch BEFORE sending its
                        // completions: once a response is observable by
                        // a client, the counters must already cover it,
                        // so the reconciliation invariant holds at any
                        // externally-visible quiescent point.
                        self.stats.batches.fetch_add(1, Ordering::Relaxed);
                        self.stats.served.fetch_add(lanes as u64, Ordering::Relaxed);
                        if let Some(model_stats) = self.registry.stats(model_id) {
                            model_stats.add_served_batch(lanes as u64);
                        }
                        for (pending, &class) in group.iter().zip(&preds) {
                            // A send error only means the poller is
                            // already gone (abandoned drop); nothing to
                            // route the reply to.
                            let _ = self.completions.send(Completion {
                                conn: pending.conn,
                                id: pending.id,
                                status: STATUS_OK,
                                class: class as u16,
                            });
                        }
                        let _ = self.waker.wake();
                        idx += split;
                    }
                    Ok(GroupEval::UnknownModel) => {
                        // Counted as rejected so the global equation
                        // still reconciles on this (unreachable) path.
                        self.stats
                            .rejected
                            .fetch_add(group.len() as u64, Ordering::Relaxed);
                        for p in group {
                            let _ = self.completions.send(Completion {
                                conn: p.conn,
                                id: p.id,
                                status: STATUS_UNKNOWN_MODEL,
                                class: 0,
                            });
                        }
                        let _ = self.waker.wake();
                        idx += split;
                    }
                    Err(_panic) => {
                        // Contain the crash: no completion was sent for
                        // this group, so shedding the whole tail answers
                        // every outstanding request exactly once. The
                        // scratch cache may hold torn state — rebuild.
                        self.stats.worker_panics.fetch_add(1, Ordering::Relaxed);
                        scratch_cache.clear();
                        self.shed(&batch[idx..], STATUS_OVERLOADED);
                        idx = batch.len();
                    }
                }
            }
            batch.clear();
        }
    }

    /// Evaluates one same-model group into `preds[..group.len()]`.
    /// Runs inside the worker's panic boundary.
    fn eval_group(
        &self,
        model_id: u16,
        group: &[Pending],
        scratch_cache: &mut HashMap<u16, (u64, Scratch)>,
        blocks: &mut Vec<u64>,
        preds: &mut [usize],
    ) -> GroupEval {
        let Some((engine, version)) = self.registry.snapshot(model_id) else {
            return GroupEval::UnknownModel;
        };
        // First visit or the slot was swapped: (re)build the scratch
        // for the engine actually in hand.
        let stale = !matches!(scratch_cache.get(&model_id), Some((v, _)) if *v == version);
        if stale {
            scratch_cache.insert(model_id, (version, engine.scratch()));
        }
        let (_, scratch) = scratch_cache.get_mut(&model_id).expect("just inserted");
        let lanes = group.len();
        let words = lanes.div_ceil(64);
        pack_block_rows_into(
            group.iter().map(|p| &p.row),
            engine.num_features(),
            words,
            blocks,
        );
        engine.predict_block_into(blocks, scratch, &mut preds[..lanes]);
        if let Some(fault) = &self.fault {
            if fault.should_panic() {
                // After evaluation, before accounting: the worst spot —
                // work done, nothing recorded yet.
                std::panic::panic_any(InjectedPanic);
            }
        }
        GroupEval::Served
    }

    /// Answers every request in `group` with a typed shed status and
    /// accounts them (globally, and per-model for deadline sheds).
    fn shed(&self, group: &[Pending], status: u8) {
        if group.is_empty() {
            return;
        }
        if status == STATUS_DEADLINE_EXCEEDED {
            self.stats
                .deadline_expired
                .fetch_add(group.len() as u64, Ordering::Relaxed);
            let mut by_model: HashMap<u16, u64> = HashMap::new();
            for p in group {
                *by_model.entry(p.model_id).or_default() += 1;
            }
            for (model_id, n) in by_model {
                if let Some(model_stats) = self.registry.stats(model_id) {
                    model_stats.add_deadline_expired(n);
                }
            }
        } else {
            self.stats
                .overloaded
                .fetch_add(group.len() as u64, Ordering::Relaxed);
        }
        for p in group {
            let _ = self.completions.send(Completion {
                conn: p.conn,
                id: p.id,
                status,
                class: 0,
            });
        }
        let _ = self.waker.wake();
    }
}
