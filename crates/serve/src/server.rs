//! The multi-threaded TCP server: acceptor, per-connection reader/writer
//! threads, and engine worker shards draining the micro-batch queue
//! across every registered model.

use std::collections::HashMap;
use std::fmt;
use std::io::{self, BufReader};
use std::net::{
    IpAddr, Ipv4Addr, Ipv6Addr, Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs,
};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use poetbin_bits::pack_block_rows_into;
use poetbin_core::persist::{load_classifier_from, PersistError};
use poetbin_engine::{ClassifierEngine, Scratch, MAX_BLOCK_WORDS};
use poetbin_fpga::NetlistError;

use crate::batcher::{BatchQueue, Pending};
use crate::protocol::{self, BAD_FRAME_ID, STATUS_BAD_REQUEST, STATUS_OK, STATUS_UNKNOWN_MODEL};
use crate::registry::ModelRegistry;

/// Tuning knobs for [`Server::start`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Engine worker shards draining the batch queue. Each owns one
    /// reusable [`poetbin_engine::Scratch`] per model; more shards overlap
    /// tape evaluation with request decode on multi-core hosts.
    pub workers: usize,
    /// How long a worker holding a partial batch waits for stragglers
    /// before serving it. Zero disables coalescing entirely (every
    /// request that finds an idle worker is served alone).
    pub linger: Duration,
    /// Requests per queue drain, at most 512 (64 lanes × the engine's
    /// 8-word lane blocks). A worker drains up to this many requests,
    /// groups them by model, packs each group into a lane-word block and
    /// evaluates it in one blocked pass
    /// ([`ClassifierEngine::predict_block_into`]), the final partial word
    /// masked.
    pub max_batch: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 2,
            linger: Duration::from_micros(200),
            max_batch: 64 * MAX_BLOCK_WORDS,
        }
    }
}

/// Monotonic whole-server counters; read them through [`Server::stats`].
/// Per-model counters live in the registry
/// ([`ModelRegistry::stats`](crate::ModelRegistry::stats)).
#[derive(Debug, Default)]
pub struct ServerStats {
    received: AtomicU64,
    served: AtomicU64,
    batches: AtomicU64,
    connections: AtomicU64,
    protocol_errors: AtomicU64,
    rejected: AtomicU64,
}

impl ServerStats {
    /// Requests decoded off connections so far (all models).
    pub fn received(&self) -> u64 {
        self.received.load(Ordering::Relaxed)
    }

    /// Predictions routed back to clients so far (all models).
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Engine tape passes (per-model batch groups) evaluated so far.
    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Connections accepted so far.
    pub fn connections(&self) -> u64 {
        self.connections.load(Ordering::Relaxed)
    }

    /// Connections dropped because the *stream* became unparseable (a
    /// length prefix past the server's frame limit). Malformed but
    /// well-framed requests are answered, not dropped — see
    /// [`rejected`](Self::rejected).
    pub fn protocol_errors(&self) -> u64 {
        self.protocol_errors.load(Ordering::Relaxed)
    }

    /// Typed error responses sent (unknown model id, wrong row width,
    /// short request payload). The connection survives these.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Mean requests per evaluated batch — the lane-occupancy figure the
    /// linger setting exists to maximise.
    pub fn mean_batch(&self) -> f64 {
        let batches = self.batches();
        if batches == 0 {
            0.0
        } else {
            self.served() as f64 / batches as f64
        }
    }
}

/// Failure to turn a model file into a compiled serving engine.
#[derive(Debug)]
pub enum LoadError {
    /// The model file (either `POETBIN` format) failed to decode.
    Persist(PersistError),
    /// The decoded classifier's lowered netlist failed compilation.
    Compile(NetlistError),
    /// The requested width is narrower than some tree's feature index.
    WidthTooNarrow {
        /// Width the caller asked for.
        requested: usize,
        /// Width the model actually needs.
        required: usize,
    },
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Persist(e) => write!(f, "loading model: {e}"),
            LoadError::Compile(e) => write!(f, "compiling model: {e}"),
            LoadError::WidthTooNarrow {
                requested,
                required,
            } => write!(
                f,
                "requested width {requested} but the model reads feature {}",
                required - 1
            ),
        }
    }
}

impl std::error::Error for LoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoadError::Persist(e) => Some(e),
            LoadError::Compile(e) => Some(e),
            LoadError::WidthTooNarrow { .. } => None,
        }
    }
}

/// Loads a model file (`POETBIN1` or `POETBIN2`, sniffed from the magic)
/// and compiles it once for serving.
///
/// `num_features` fixes the row width clients must send; `None` uses the
/// narrowest width the model supports
/// ([`poetbin_core::PoetBinClassifier::min_features`]).
///
/// # Errors
///
/// Returns [`LoadError`] when the file fails to decode, the width is
/// narrower than the model needs, or netlist compilation fails.
pub fn load_engine(
    path: impl AsRef<Path>,
    num_features: Option<usize>,
) -> Result<ClassifierEngine, LoadError> {
    let clf = load_classifier_from(path).map_err(LoadError::Persist)?;
    let required = clf.min_features();
    let width = num_features.unwrap_or(required);
    if width < required {
        return Err(LoadError::WidthTooNarrow {
            requested: width,
            required,
        });
    }
    ClassifierEngine::compile(&clf, width).map_err(LoadError::Compile)
}

/// A running inference server; dropping or [`Server::shutdown`]ing it
/// stops every thread.
///
/// One acceptor thread hands each connection a reader thread (decodes
/// request frames into the shared batch queue) and a writer thread
/// (owns the write half, draining an mpsc channel of responses). Worker
/// shards blocked on the queue coalesce up to `max_batch ≤ 512` requests,
/// group them by model, and evaluate each group as a single packed
/// lane-word block in one blocked tape pass — each model's immutable
/// compiled plan is shared behind an [`Arc`], so every shard evaluates
/// the same tape with its own scratch.
///
/// Engines can be hot-swapped through the shared [`ModelRegistry`] while
/// the server runs: batches in flight finish on the engine they
/// snapshotted, later batches use the replacement.
///
/// # Example
///
/// ```no_run
/// use std::sync::Arc;
/// use poetbin_serve::{Client, ModelRegistry, ServeConfig, Server};
/// # let engine: poetbin_engine::ClassifierEngine = unimplemented!();
/// # let row: poetbin_bits::BitVec = unimplemented!();
///
/// let mut registry = ModelRegistry::new();
/// registry.register("default", Arc::new(engine));
/// let server = Server::start(Arc::new(registry), "127.0.0.1:0", ServeConfig::default())?;
/// let mut client = Client::connect(server.local_addr())?;
/// let class = client.predict(&row)?;
/// server.shutdown();
/// # Ok::<(), std::io::Error>(())
/// ```
pub struct Server {
    addr: SocketAddr,
    registry: Arc<ModelRegistry>,
    queue: Arc<BatchQueue>,
    stats: Arc<ServerStats>,
    stopping: Arc<AtomicBool>,
    conns: Arc<Mutex<HashMap<u64, TcpStream>>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
    core_threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// acceptor plus `config.workers` engine shards serving every model
    /// in `registry`.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    ///
    /// # Panics
    ///
    /// Panics if the registry is empty, `config.workers == 0`, or
    /// `config.max_batch` is not in `1..=512`.
    pub fn start(
        registry: Arc<ModelRegistry>,
        addr: impl ToSocketAddrs,
        config: ServeConfig,
    ) -> io::Result<Server> {
        assert!(!registry.is_empty(), "registry has no models to serve");
        assert!(config.workers > 0, "need at least one worker shard");
        assert!(
            (1..=64 * MAX_BLOCK_WORDS).contains(&config.max_batch),
            "max_batch must be in 1..={}",
            64 * MAX_BLOCK_WORDS
        );
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let queue = Arc::new(BatchQueue::new());
        let stats = Arc::new(ServerStats::default());
        let stopping = Arc::new(AtomicBool::new(false));
        let conns = Arc::new(Mutex::new(HashMap::new()));
        let conn_threads = Arc::new(Mutex::new(Vec::new()));

        let mut core_threads = Vec::with_capacity(config.workers + 1);
        for shard in 0..config.workers {
            let registry = Arc::clone(&registry);
            let queue = Arc::clone(&queue);
            let stats = Arc::clone(&stats);
            let (linger, max_batch) = (config.linger, config.max_batch);
            core_threads.push(
                std::thread::Builder::new()
                    .name(format!("poetbin-worker-{shard}"))
                    .spawn(move || worker_loop(&registry, &queue, &stats, max_batch, linger))?,
            );
        }
        {
            let registry = Arc::clone(&registry);
            let queue = Arc::clone(&queue);
            let stats = Arc::clone(&stats);
            let stopping = Arc::clone(&stopping);
            let conns = Arc::clone(&conns);
            let conn_threads = Arc::clone(&conn_threads);
            core_threads.push(
                std::thread::Builder::new()
                    .name("poetbin-accept".into())
                    .spawn(move || {
                        accept_loop(
                            &listener,
                            &registry,
                            &queue,
                            &stats,
                            &stopping,
                            &conns,
                            &conn_threads,
                        );
                    })?,
            );
        }

        Ok(Server {
            addr,
            registry,
            queue,
            stats,
            stopping,
            conns,
            conn_threads,
            core_threads,
        })
    }

    /// The bound address (with the real port when started on port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The registry this server routes requests through — the handle for
    /// hot-swapping engines and reading per-model stats.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// The server's monotonic counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Requests currently parked waiting for a word (diagnostics only).
    pub fn queue_depth(&self) -> usize {
        self.queue.depth()
    }

    /// Stops accepting, drains the queue, and joins every thread.
    /// Already-parked requests are still evaluated; their responses reach
    /// any connection that is still open.
    pub fn shutdown(mut self) {
        self.stop();
        for t in self.core_threads.drain(..) {
            let _ = t.join();
        }
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.conn_threads.lock().unwrap());
        for t in handles {
            let _ = t.join();
        }
    }

    fn stop(&self) {
        self.stopping.store(true, Ordering::SeqCst);
        self.queue.close();
        // Unblock the acceptor with a throwaway connection, then yank every
        // live connection so blocked readers return. A wildcard bind
        // (0.0.0.0 / [::]) is not connectable on every platform — aim the
        // wake-up at the loopback equivalent instead.
        let mut wake = self.addr;
        if wake.ip().is_unspecified() {
            wake.set_ip(match wake {
                SocketAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
                SocketAddr::V6(_) => IpAddr::V6(Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect(wake);
        for stream in self.conns.lock().unwrap().values() {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if !self.stopping.load(Ordering::SeqCst) {
            self.stop();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    registry: &Arc<ModelRegistry>,
    queue: &Arc<BatchQueue>,
    stats: &Arc<ServerStats>,
    stopping: &Arc<AtomicBool>,
    conns: &Arc<Mutex<HashMap<u64, TcpStream>>>,
    conn_threads: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    let mut next_conn = 0u64;
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if stopping.load(Ordering::SeqCst) {
                    return;
                }
                // A persistent failure (fd exhaustion, say) would
                // otherwise busy-spin this thread at 100% exactly when
                // the process is already resource-starved.
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        if stopping.load(Ordering::SeqCst) {
            return;
        }
        stats.connections.fetch_add(1, Ordering::Relaxed);
        let conn_id = next_conn;
        next_conn += 1;
        if let Ok(clone) = stream.try_clone() {
            conns.lock().unwrap().insert(conn_id, clone);
        }
        let registry = Arc::clone(registry);
        let queue = Arc::clone(queue);
        let conn_stats = Arc::clone(stats);
        let conns_for_cleanup = Arc::clone(conns);
        let conn_threads_inner = Arc::clone(conn_threads);
        let spawned = std::thread::Builder::new()
            .name(format!("poetbin-conn-{conn_id}"))
            .spawn(move || {
                connection_loop(stream, &registry, &queue, &conn_stats, &conn_threads_inner);
                conns_for_cleanup.lock().unwrap().remove(&conn_id);
            });
        match spawned {
            Ok(handle) => {
                // Reap handles of connections that have already finished
                // (dropping a finished JoinHandle just detaches it), so
                // the registry stays proportional to *live* connections
                // over an arbitrarily long server lifetime.
                let mut handles = conn_threads.lock().unwrap();
                handles.retain(|h| !h.is_finished());
                handles.push(handle);
            }
            Err(_) => {
                // Could not spawn a thread for it (resource exhaustion):
                // release the registry's stream clone, closing the
                // connection rather than leaking it.
                conns.lock().unwrap().remove(&conn_id);
            }
        }
    }
}

/// Reads request frames off one connection into the batch queue; the
/// paired writer thread (spawned here) owns the write half.
///
/// The length prefix keeps the stream frame-aligned through malformed
/// *payloads*, so those are answered with typed error responses and the
/// connection lives on. Only an unparseable frame — a length prefix past
/// the largest request any registered model can produce — still drops
/// the connection: the bytes after it cannot be resynchronised.
fn connection_loop(
    mut stream: TcpStream,
    registry: &ModelRegistry,
    queue: &BatchQueue,
    stats: &ServerStats,
    conn_threads: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    let _ = stream.set_nodelay(true);
    if protocol::write_hello(&mut stream, &registry.infos()).is_err() {
        return;
    }
    let write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let (reply_tx, reply_rx) = mpsc::channel::<(u64, u8, u16)>();
    let writer = std::thread::Builder::new()
        .name("poetbin-conn-writer".into())
        .spawn(move || writer_loop(write_half, &reply_rx));
    if let Ok(handle) = writer {
        conn_threads.lock().unwrap().push(handle);
    }

    let max_payload = registry.max_request_payload();
    let mut reader = BufReader::new(stream.try_clone().unwrap_or(stream));
    loop {
        match protocol::read_frame(&mut reader, max_payload) {
            Ok(Some(payload)) => {
                let reject = |id: u64, status: u8| {
                    stats.rejected.fetch_add(1, Ordering::Relaxed);
                    let _ = reply_tx.send((id, status, 0));
                };
                let Some((model_id, id, bits)) = protocol::decode_request(&payload) else {
                    // Too short to even carry a request id; echo the
                    // sentinel so the client can at least count it.
                    reject(BAD_FRAME_ID, STATUS_BAD_REQUEST);
                    continue;
                };
                let Some(num_features) = registry.num_features(model_id) else {
                    reject(id, STATUS_UNKNOWN_MODEL);
                    continue;
                };
                let Some(row) = protocol::decode_row(bits, num_features) else {
                    reject(id, STATUS_BAD_REQUEST);
                    continue;
                };
                stats.received.fetch_add(1, Ordering::Relaxed);
                if let Some(model_stats) = registry.stats(model_id) {
                    model_stats.add_received(1);
                }
                queue.push(Pending {
                    model_id,
                    id,
                    row,
                    reply: reply_tx.clone(),
                });
            }
            Ok(None) => break,
            Err(e) => {
                if e.kind() == io::ErrorKind::InvalidData {
                    stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                }
                break;
            }
        }
    }
    // Close the read half; the writer keeps running until every in-flight
    // reply for this connection has been delivered (all queue-held Sender
    // clones dropped), then exits on channel disconnect.
    let _ = reader.get_ref().shutdown(Shutdown::Read);
}

fn writer_loop(mut stream: TcpStream, replies: &mpsc::Receiver<(u64, u8, u16)>) {
    while let Ok((id, status, class)) = replies.recv() {
        let payload = protocol::encode_response(id, status, class);
        if protocol::write_frame(&mut stream, &payload).is_err() {
            return;
        }
    }
}

/// One engine shard: drain up to a lane block's worth of requests
/// (`64 · B`), group them by model, pack each group and evaluate it in
/// one blocked tape pass, route each argmax back to its connection.
///
/// Scratch buffers are cached per model and invalidated by the slot
/// version, so a hot-swapped engine (whose compiled plan may differ in
/// size) never sees scratch sized for its predecessor.
fn worker_loop(
    registry: &ModelRegistry,
    queue: &BatchQueue,
    stats: &ServerStats,
    max_batch: usize,
    linger: Duration,
) {
    let mut scratch_cache: HashMap<u16, (u64, Scratch)> = HashMap::new();
    let mut batch: Vec<Pending> = Vec::with_capacity(max_batch);
    let mut blocks: Vec<u64> = Vec::new();
    let mut preds = vec![0usize; max_batch];
    while queue.pop_batch(max_batch, linger, &mut batch) {
        // Group by model; stable, so FIFO order survives within a model.
        batch.sort_by_key(|p| p.model_id);
        let mut rest = std::mem::take(&mut batch);
        while !rest.is_empty() {
            let model_id = rest[0].model_id;
            let split = rest.partition_point(|p| p.model_id == model_id);
            let group: Vec<Pending> = rest.drain(..split).collect();
            let Some((engine, version)) = registry.snapshot(model_id) else {
                // Connection readers validate ids against the registry, and
                // registered models are never removed — defensive only.
                for p in group {
                    let _ = p.reply.send((p.id, STATUS_UNKNOWN_MODEL, 0));
                }
                continue;
            };
            // First visit or the slot was swapped: (re)build the scratch
            // for the engine actually in hand.
            let stale = !matches!(scratch_cache.get(&model_id), Some((v, _)) if *v == version);
            if stale {
                scratch_cache.insert(model_id, (version, engine.scratch()));
            }
            let (_, scratch) = scratch_cache.get_mut(&model_id).expect("just inserted");
            let lanes = group.len();
            let words = lanes.div_ceil(64);
            pack_block_rows_into(
                group.iter().map(|p| &p.row),
                engine.num_features(),
                words,
                &mut blocks,
            );
            engine.predict_block_into(&blocks, scratch, &mut preds[..lanes]);
            for (pending, &class) in group.into_iter().zip(&preds) {
                // A send error only means the connection died before its
                // answer was ready; nothing to route the reply to.
                let _ = pending.reply.send((pending.id, STATUS_OK, class as u16));
            }
            stats.batches.fetch_add(1, Ordering::Relaxed);
            stats.served.fetch_add(lanes as u64, Ordering::Relaxed);
            if let Some(model_stats) = registry.stats(model_id) {
                model_stats.add_served_batch(lanes as u64);
            }
        }
    }
}
