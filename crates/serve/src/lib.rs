//! `poetbin-serve`: an adaptive micro-batching inference server over the
//! compiled PoET-BiN engine.
//!
//! A PoET-BiN classifier collapses to pure LUT logic, and the compiled
//! engine ([`poetbin_engine::ClassifierEngine`]) evaluates that logic over
//! lane-word blocks — up to 512 examples per tape pass. Serving
//! *concurrent single-row requests* efficiently is therefore a
//! lane-occupancy problem: throughput is won by keeping the lanes full.
//! This crate implements the missing piece — request coalescing:
//!
//! * **Connections** speak a tiny length-prefixed binary protocol
//!   ([`protocol`]): the server announces the model shape, clients send
//!   `(id, packed row)` request frames and receive `(id, class)`
//!   responses, pipelined as deeply as they like.
//! * **The adaptive micro-batcher** (internal; tuned via [`ServeConfig`])
//!   parks decoded rows in a lock-protected queue. Worker shards drain up
//!   to `64 · 8` of them at a time — a partial batch lingers a
//!   configurable few hundred microseconds for stragglers, so light
//!   traffic keeps its latency while heavy traffic packs full blocks.
//! * **Worker shards** share the immutable compiled plan behind an `Arc`;
//!   each packs its batch with [`poetbin_bits::pack_block_rows`] (one
//!   64×64 transpose per tile) and runs
//!   [`poetbin_engine::ClassifierEngine::predict_block_into`] — masked
//!   partial-word tail evaluation, zero allocation on the hot path — then
//!   routes every argmax back to its originating connection.
//!
//! The server is std-only: no async runtime, no network dependencies.
//!
//! # Quickstart
//!
//! ```no_run
//! use std::sync::Arc;
//! use poetbin_serve::{load_engine, Client, ServeConfig, Server};
//!
//! // Load a persisted POETBIN1 model and compile it once.
//! let engine = load_engine("model.poetbin", None).expect("valid model");
//! let server = Server::start(Arc::new(engine), "127.0.0.1:9009", ServeConfig::default())?;
//!
//! let mut client = Client::connect(server.local_addr())?;
//! let row = poetbin_bits::BitVec::zeros(client.num_features());
//! println!("class = {}", client.predict(&row)?);
//! server.shutdown();
//! # Ok::<(), std::io::Error>(())
//! ```
//!
//! Throughput/latency numbers come from the closed-loop load generator:
//! `cargo run --release -p poetbin_bench --bin loadgen`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batcher;
mod client;
pub mod protocol;
mod server;

pub use client::{Client, ClientReceiver, ClientSender};
pub use server::{load_engine, LoadError, ServeConfig, Server, ServerStats};
