//! `poetbin-serve`: an adaptive micro-batching inference server over the
//! compiled PoET-BiN engine.
//!
//! A PoET-BiN classifier collapses to pure LUT logic, and the compiled
//! engine ([`poetbin_engine::ClassifierEngine`]) evaluates that logic over
//! lane-word blocks — up to 512 examples per tape pass. Serving
//! *concurrent single-row requests* efficiently is therefore a
//! lane-occupancy problem: throughput is won by keeping the lanes full.
//! This crate implements the missing piece — request coalescing:
//!
//! * **Connections** speak a tiny length-prefixed binary protocol
//!   ([`protocol`]): the server opens with a hello advertising every
//!   model it serves (a [`ModelRegistry`] of named, hot-swappable
//!   engines), clients send `(model_id, request_id, packed row)` request
//!   frames and receive `(request_id, status, class)` responses,
//!   pipelined as deeply as they like. Malformed requests get typed
//!   error responses; the connection lives on.
//! * **The event loop** (internal): a single poller thread owns every
//!   socket through a vendored epoll shim — nonblocking accept, reads
//!   into per-connection buffers with frame reassembly across split
//!   reads, buffered writes with flow control. A connection whose peer
//!   stops draining responses has its *reads* paused once the write
//!   backlog passes [`ServeConfig::write_buf_cap`], so a slow reader
//!   throttles itself instead of the server; a dead peer tears down both
//!   halves at once.
//! * **Bounded micro-batch queues** (tuned via [`ServeConfig`]): decoded
//!   rows go round-robin into per-worker shards of capacity
//!   [`ServeConfig::queue_cap`]. When every shard is full the request is
//!   shed immediately with a typed
//!   [`protocol::STATUS_OVERLOADED`] response — queue memory and the
//!   queueing delay of *accepted* requests stay bounded no matter the
//!   offered load. A partial batch lingers a configurable few hundred
//!   microseconds (measured from the oldest request's arrival) for
//!   stragglers, so light traffic keeps its latency while heavy traffic
//!   packs full blocks.
//! * **Engine workers** drain up to `64 · 8` requests from their shard,
//!   group them by model, and share every model's immutable compiled
//!   plan behind an `Arc`; each group is packed with
//!   [`poetbin_bits::pack_block_rows`] (one 64×64 transpose per tile)
//!   and evaluated with
//!   [`poetbin_engine::ClassifierEngine::predict_block_into`] — masked
//!   partial-word tail evaluation, zero allocation on the hot path — then
//!   every argmax is routed back through the poller to its originating
//!   connection. Engines swapped through the registry take effect
//!   between batches, never inside one.
//! * **Observability**: a second plain-text listener
//!   ([`Server::stats_addr`]) reports the global counters, per-shard
//!   queue depths, and per-model lines to anything that connects.
//! * **Graceful degradation**: per-request deadlines
//!   ([`ServeConfig::deadline`]) shed stale queued work with
//!   [`protocol::STATUS_DEADLINE_EXCEEDED`]; worker panics are contained
//!   to the batch in hand (the unanswered requests are shed, the worker
//!   keeps serving); idle and slow-loris connections are reaped
//!   ([`ServeConfig::idle_timeout`]); [`Server::shutdown_within`] drains
//!   under a watchdog; and [`ModelRegistry::swap_validated`] canary-checks
//!   a replacement model before the atomic swap, so a corrupt artifact
//!   can never disturb live traffic. The counters reconcile exactly —
//!   `received == served + overloaded + deadline_expired + rejected +
//!   protocol_errors` at quiescence — and a deterministic seeded
//!   fault-injection layer ([`FaultPlan`]) replays I/O fault schedules
//!   against that invariant in the chaos suite.
//!
//! The server is std-only: no async runtime, no network dependencies
//! (the epoll surface is a vendored in-tree shim, like `rand`/`serde`).
//!
//! # Quickstart
//!
//! ```no_run
//! use std::sync::Arc;
//! use poetbin_serve::{load_engine, Client, ModelRegistry, ServeConfig, Server};
//!
//! // Load persisted models (either POETBIN format) and compile each once.
//! let mut registry = ModelRegistry::new();
//! registry.register("tiny", Arc::new(load_engine("tiny.poetbin2", None).expect("valid")));
//! registry.register("deep", Arc::new(load_engine("deep.poetbin2", None).expect("valid")));
//! let registry = Arc::new(registry);
//! let server = Server::start(Arc::clone(&registry), "127.0.0.1:9009", ServeConfig::default())?;
//!
//! let mut client = Client::connect(server.local_addr())?;
//! let deep = client.model("deep").expect("advertised").id;
//! let row = poetbin_bits::BitVec::zeros(client.models()[deep as usize].num_features);
//! println!("class = {}", client.predict_on(deep, &row)?);
//!
//! // Hot-swap an engine while the server runs; in-flight batches finish
//! // on the old engine, later ones use the new.
//! registry.swap(deep, Arc::new(load_engine("deep-v2.poetbin2", None).expect("valid")))
//!     .expect("same wire shape");
//! server.shutdown();
//! # Ok::<(), std::io::Error>(())
//! ```
//!
//! Throughput/latency numbers come from the load generator
//! (`cargo run --release -p poetbin_bench --bin loadgen`): closed-loop
//! for capacity, `--open-loop` rate sweeps for the latency SLO curves.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batcher;
mod client;
mod event_loop;
mod fault;
pub mod protocol;
mod registry;
mod server;

pub use client::{Client, ClientReceiver, ClientSender, Response, RetryPolicy};
pub use fault::{torn_copies, FaultPlan, InjectedPanic};
pub use registry::{ModelRegistry, ModelStats, SwapError};
pub use server::{load_engine, load_engine_with, LoadError, ServeConfig, Server, ServerStats};
