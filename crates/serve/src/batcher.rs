//! The bounded, sharded micro-batching queues between the event loop and
//! the engine workers.
//!
//! Each worker owns exactly one [`Shard`]. The poller thread distributes
//! decoded requests round-robin with [`Shard::try_push`] — which **never
//! blocks and never grows past the shard's capacity**: a push into a
//! full (or closed) shard hands the request back, and the caller answers
//! `STATUS_OVERLOADED` instead of queueing unbounded memory. Keeping one
//! producer-side syscall thread and N single-consumer shards means the
//! mutexes are uncontended in the common case; the condvar exists only
//! to park an idle worker.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use poetbin_bits::BitVec;

/// One parked request: the decoded feature row plus everything needed to
/// route the prediction back to its originating connection.
#[derive(Debug)]
pub(crate) struct Pending {
    /// Registry id of the model this request is aimed at.
    pub model_id: u16,
    /// Client-chosen request id, echoed back in the response.
    pub id: u64,
    /// Event-loop token of the originating connection.
    pub conn: u64,
    /// The decoded feature row.
    pub row: BitVec,
    /// When the event loop decoded the request — the anchor for the
    /// deadline-aware linger.
    pub arrived: Instant,
}

struct ShardState {
    queue: VecDeque<Pending>,
    open: bool,
}

/// One worker's bounded pending queue with deadline-aware adaptive
/// draining.
///
/// The linger in [`Shard::pop_batch`] is anchored to the **oldest queued
/// request's arrival time**, not to the moment the worker woke: a worker
/// that was busy evaluating the previous batch has already "spent" its
/// linger and serves the backlog immediately, while a lone request on an
/// idle worker waits out the full window for lane-mates. No request is
/// ever held in the queue longer than the linger bound by batching
/// alone.
pub(crate) struct Shard {
    state: Mutex<ShardState>,
    arrived: Condvar,
    cap: usize,
}

impl Shard {
    /// An open shard holding at most `cap` requests.
    pub(crate) fn new(cap: usize) -> Shard {
        assert!(cap > 0, "a shard must hold at least one request");
        Shard {
            state: Mutex::new(ShardState {
                queue: VecDeque::with_capacity(cap.min(4096)),
                open: true,
            }),
            arrived: Condvar::new(),
            cap,
        }
    }

    /// Parks one request for the owning worker's next batch, or hands it
    /// back when the shard is full or closed — the caller sheds it with
    /// a typed `STATUS_OVERLOADED` response. Never blocks.
    pub(crate) fn try_push(&self, pending: Pending) -> Result<(), Pending> {
        let mut state = self.state.lock().unwrap();
        if !state.open || state.queue.len() >= self.cap {
            return Err(pending);
        }
        state.queue.push_back(pending);
        drop(state);
        self.arrived.notify_one();
        Ok(())
    }

    /// Closes the shard: blocked and future `pop_batch` calls drain any
    /// remaining requests, then return `false`; pushes bounce.
    pub(crate) fn close(&self) {
        self.state.lock().unwrap().open = false;
        self.arrived.notify_all();
    }

    /// Queue depth right now (stats/diagnostics only — stale by the time
    /// the caller reads it).
    pub(crate) fn depth(&self) -> usize {
        self.state.lock().unwrap().queue.len()
    }

    /// Blocks for the next batch, draining up to `max_batch` requests
    /// into `out` (cleared first). Returns `false` — and drains nothing —
    /// only once the shard is closed *and* empty.
    ///
    /// The first request is waited for indefinitely; once one is in hand
    /// the worker lingers only until `oldest.arrived + linger` for the
    /// block to fill before serving a partial batch.
    ///
    /// With a per-request `deadline`, drained requests that have already
    /// aged past `arrived + deadline` are diverted into `expired`
    /// (cleared first) instead of `out`: the caller sheds them with
    /// `STATUS_DEADLINE_EXCEEDED` rather than spending engine time on
    /// answers nobody is still waiting for. A `true` return can therefore
    /// leave `out` empty while `expired` is not.
    pub(crate) fn pop_batch(
        &self,
        max_batch: usize,
        linger: Duration,
        deadline: Option<Duration>,
        out: &mut Vec<Pending>,
        expired: &mut Vec<Pending>,
    ) -> bool {
        out.clear();
        expired.clear();
        let mut state = self.state.lock().unwrap();
        loop {
            while state.queue.is_empty() {
                if !state.open {
                    return false;
                }
                state = self.arrived.wait(state).unwrap();
            }
            if state.queue.len() >= max_batch || linger.is_zero() || !state.open {
                break;
            }
            // Deadline-aware: the window is measured from when the head
            // request arrived, so queue time from batching is bounded by
            // `linger` no matter how late the worker got here.
            let fill_by = state.queue.front().expect("non-empty").arrived + linger;
            loop {
                let now = Instant::now();
                if now >= fill_by || state.queue.len() >= max_batch || !state.open {
                    break;
                }
                let (next, timeout) = self.arrived.wait_timeout(state, fill_by - now).unwrap();
                state = next;
                if timeout.timed_out() {
                    break;
                }
            }
            // Defensive: never return an empty "batch" (the queue cannot
            // drain under a single-consumer shard, but the invariant is
            // cheap to keep).
            if !state.queue.is_empty() {
                break;
            }
        }
        let take = state.queue.len().min(max_batch);
        match deadline {
            None => out.extend(state.queue.drain(..take)),
            Some(limit) => {
                let now = Instant::now();
                for p in state.queue.drain(..take) {
                    if now.saturating_duration_since(p.arrived) > limit {
                        expired.push(p);
                    } else {
                        out.push(p);
                    }
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn pending(id: u64) -> Pending {
        Pending {
            model_id: 0,
            id,
            conn: 0,
            row: BitVec::zeros(4),
            arrived: Instant::now(),
        }
    }

    #[test]
    fn drains_in_fifo_order_up_to_max_batch() {
        let q = Shard::new(64);
        for id in 0..5 {
            q.try_push(pending(id)).expect("open and not full");
        }
        let mut out = Vec::new();
        assert!(q.pop_batch(3, Duration::ZERO, None, &mut out, &mut Vec::new()));
        assert_eq!(out.iter().map(|p| p.id).collect::<Vec<_>>(), [0, 1, 2]);
        assert!(q.pop_batch(3, Duration::ZERO, None, &mut out, &mut Vec::new()));
        assert_eq!(out.iter().map(|p| p.id).collect::<Vec<_>>(), [3, 4]);
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn full_shard_bounces_the_push_back() {
        let q = Shard::new(3);
        for id in 0..3 {
            q.try_push(pending(id)).expect("under capacity");
        }
        let bounced = q.try_push(pending(99)).expect_err("full shard must bounce");
        assert_eq!(bounced.id, 99, "the rejected request comes back intact");
        assert_eq!(q.depth(), 3, "a bounced push must not grow the queue");
        // Draining frees capacity again.
        let mut out = Vec::new();
        assert!(q.pop_batch(64, Duration::ZERO, None, &mut out, &mut Vec::new()));
        assert_eq!(out.len(), 3);
        q.try_push(pending(100)).expect("space after drain");
    }

    #[test]
    fn close_drains_leftovers_then_reports_empty_and_bounces_pushes() {
        let q = Shard::new(64);
        q.try_push(pending(9)).expect("open");
        q.close();
        assert!(
            q.try_push(pending(10)).is_err(),
            "a closed shard must hand the request back, not drop it silently"
        );
        let mut out = Vec::new();
        assert!(q.pop_batch(
            64,
            Duration::from_millis(50),
            None,
            &mut out,
            &mut Vec::new()
        ));
        assert_eq!(out.len(), 1);
        assert!(!q.pop_batch(
            64,
            Duration::from_millis(50),
            None,
            &mut out,
            &mut Vec::new()
        ));
        assert!(out.is_empty());
    }

    #[test]
    fn linger_coalesces_requests_arriving_apart() {
        let q = Arc::new(Shard::new(64));
        q.try_push(pending(1)).expect("open");
        let q2 = Arc::clone(&q);
        let pusher = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            q2.try_push(pending(2)).expect("open");
        });
        let mut out = Vec::new();
        assert!(q.pop_batch(
            64,
            Duration::from_millis(500),
            None,
            &mut out,
            &mut Vec::new()
        ));
        // The second request arrived well inside the linger window, so one
        // batch carries both.
        assert_eq!(out.len(), 2);
        pusher.join().unwrap();
    }

    #[test]
    fn linger_is_anchored_to_arrival_not_to_the_pop() {
        let q = Shard::new(64);
        q.try_push(pending(1)).expect("open");
        // Simulate a worker that was busy past the linger window: the
        // deadline (arrival + 20ms) is already behind us, so the pop must
        // not wait at all.
        std::thread::sleep(Duration::from_millis(25));
        let start = Instant::now();
        let mut out = Vec::new();
        assert!(q.pop_batch(
            64,
            Duration::from_millis(20),
            None,
            &mut out,
            &mut Vec::new()
        ));
        assert_eq!(out.len(), 1);
        assert!(
            start.elapsed() < Duration::from_millis(15),
            "an already-expired linger must serve immediately, waited {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn full_block_skips_the_linger() {
        let q = Shard::new(128);
        for id in 0..64 {
            q.try_push(pending(id)).expect("open");
        }
        let start = Instant::now();
        let mut out = Vec::new();
        // A pathological linger must not delay an already-full block.
        assert!(q.pop_batch(64, Duration::from_secs(5), None, &mut out, &mut Vec::new()));
        assert_eq!(out.len(), 64);
        assert!(start.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn deadline_partitions_stale_requests_into_expired() {
        let q = Shard::new(64);
        // Two stale requests, then two fresh ones.
        for id in 0..2 {
            let mut p = pending(id);
            p.arrived = Instant::now() - Duration::from_millis(50);
            q.try_push(p).expect("open");
        }
        for id in 2..4 {
            q.try_push(pending(id)).expect("open");
        }
        let (mut out, mut expired) = (Vec::new(), Vec::new());
        assert!(q.pop_batch(
            64,
            Duration::ZERO,
            Some(Duration::from_millis(10)),
            &mut out,
            &mut expired,
        ));
        assert_eq!(
            expired.iter().map(|p| p.id).collect::<Vec<_>>(),
            [0, 1],
            "aged-out requests divert to expired"
        );
        assert_eq!(
            out.iter().map(|p| p.id).collect::<Vec<_>>(),
            [2, 3],
            "fresh requests still batch"
        );
    }

    #[test]
    fn all_expired_returns_true_with_empty_batch() {
        let q = Shard::new(64);
        let mut p = pending(7);
        p.arrived = Instant::now() - Duration::from_secs(1);
        q.try_push(p).expect("open");
        let (mut out, mut expired) = (Vec::new(), Vec::new());
        assert!(q.pop_batch(
            64,
            Duration::ZERO,
            Some(Duration::from_millis(1)),
            &mut out,
            &mut expired,
        ));
        assert!(out.is_empty());
        assert_eq!(expired.len(), 1);
        assert_eq!(q.depth(), 0, "expired requests leave the queue");
    }

    #[test]
    fn generous_deadline_expires_nothing() {
        let q = Shard::new(64);
        q.try_push(pending(1)).expect("open");
        let (mut out, mut expired) = (Vec::new(), Vec::new());
        assert!(q.pop_batch(
            64,
            Duration::ZERO,
            Some(Duration::from_secs(60)),
            &mut out,
            &mut expired,
        ));
        assert_eq!(out.len(), 1);
        assert!(expired.is_empty());
    }

    #[test]
    fn blocked_worker_wakes_on_close() {
        let q = Arc::new(Shard::new(64));
        let q2 = Arc::clone(&q);
        let worker = std::thread::spawn(move || {
            let mut out = Vec::new();
            q2.pop_batch(
                64,
                Duration::from_millis(1),
                None,
                &mut out,
                &mut Vec::new(),
            )
        });
        std::thread::sleep(Duration::from_millis(5));
        q.close();
        assert!(!worker.join().unwrap());
    }
}
