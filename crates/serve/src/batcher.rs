//! The adaptive micro-batching queue between connection readers and
//! engine workers.

use std::collections::VecDeque;
use std::sync::mpsc::Sender;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use poetbin_bits::BitVec;

/// One parked request: the decoded feature row plus everything needed to
/// route the prediction back to its originating connection.
pub(crate) struct Pending {
    /// Registry id of the model this request is aimed at.
    pub model_id: u16,
    /// Client-chosen request id, echoed back in the response.
    pub id: u64,
    /// The decoded feature row.
    pub row: BitVec,
    /// The originating connection's response channel:
    /// `(request id, status, class)`.
    pub reply: Sender<(u64, u8, u16)>,
}

struct QueueState {
    queue: VecDeque<Pending>,
    open: bool,
}

/// A lock-protected pending queue with condvar-paced adaptive draining.
///
/// Connection readers [`push`](BatchQueue::push) decoded rows; engine
/// workers [`pop_batch`](BatchQueue::pop_batch) up to 64 of them at a
/// time. A worker that wakes to a partial word lingers briefly for
/// stragglers — under load words fill instantly and the linger never
/// triggers, while a lone request only ever pays the configured bound.
pub(crate) struct BatchQueue {
    state: Mutex<QueueState>,
    arrived: Condvar,
}

impl BatchQueue {
    pub(crate) fn new() -> BatchQueue {
        BatchQueue {
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                open: true,
            }),
            arrived: Condvar::new(),
        }
    }

    /// Parks one request for the next batch. A request pushed after
    /// [`BatchQueue::close`] is dropped on the floor: the workers are
    /// gone, and holding it would pin its reply `Sender` forever, keeping
    /// the connection's writer thread blocked and wedging shutdown.
    pub(crate) fn push(&self, pending: Pending) {
        let mut state = self.state.lock().unwrap();
        if !state.open {
            return;
        }
        state.queue.push_back(pending);
        drop(state);
        self.arrived.notify_one();
    }

    /// Closes the queue: blocked and future `pop_batch` calls return any
    /// remaining requests, then `false`.
    pub(crate) fn close(&self) {
        self.state.lock().unwrap().open = false;
        self.arrived.notify_all();
    }

    /// Queue depth right now (diagnostics only — stale by the time the
    /// caller reads it).
    pub(crate) fn depth(&self) -> usize {
        self.state.lock().unwrap().queue.len()
    }

    /// Blocks for the next batch, draining up to `max_batch` requests into
    /// `out` (cleared first). Returns `false` — and drains nothing — only
    /// once the queue is closed *and* empty.
    ///
    /// The adaptive part: the first request is waited for indefinitely,
    /// but once one is in hand the worker only lingers up to `linger` for
    /// the word to fill before serving a partial batch.
    pub(crate) fn pop_batch(
        &self,
        max_batch: usize,
        linger: Duration,
        out: &mut Vec<Pending>,
    ) -> bool {
        out.clear();
        let mut state = self.state.lock().unwrap();
        loop {
            while state.queue.is_empty() {
                if !state.open {
                    return false;
                }
                state = self.arrived.wait(state).unwrap();
            }
            if state.queue.len() >= max_batch || linger.is_zero() || !state.open {
                break;
            }
            let deadline = Instant::now() + linger;
            loop {
                let now = Instant::now();
                if now >= deadline || state.queue.len() >= max_batch || !state.open {
                    break;
                }
                let (next, timeout) = self.arrived.wait_timeout(state, deadline - now).unwrap();
                state = next;
                if timeout.timed_out() {
                    break;
                }
            }
            // A sibling worker may have drained the queue while we
            // lingered; never return an empty "batch" — go back to the
            // blocking wait instead.
            if !state.queue.is_empty() {
                break;
            }
        }
        let take = state.queue.len().min(max_batch);
        out.extend(state.queue.drain(..take));
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;
    use std::sync::Arc;

    fn pending(id: u64) -> (Pending, std::sync::mpsc::Receiver<(u64, u8, u16)>) {
        let (tx, rx) = channel();
        (
            Pending {
                model_id: 0,
                id,
                row: BitVec::zeros(4),
                reply: tx,
            },
            rx,
        )
    }

    #[test]
    fn drains_in_fifo_order_up_to_max_batch() {
        let q = BatchQueue::new();
        let mut rxs = Vec::new();
        for id in 0..5 {
            let (p, rx) = pending(id);
            q.push(p);
            rxs.push(rx);
        }
        let mut out = Vec::new();
        assert!(q.pop_batch(3, Duration::ZERO, &mut out));
        assert_eq!(out.iter().map(|p| p.id).collect::<Vec<_>>(), [0, 1, 2]);
        assert!(q.pop_batch(3, Duration::ZERO, &mut out));
        assert_eq!(out.iter().map(|p| p.id).collect::<Vec<_>>(), [3, 4]);
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn close_drains_leftovers_then_reports_empty() {
        let q = BatchQueue::new();
        let (p, _rx) = pending(9);
        q.push(p);
        q.close();
        let mut out = Vec::new();
        assert!(q.pop_batch(64, Duration::from_millis(50), &mut out));
        assert_eq!(out.len(), 1);
        assert!(!q.pop_batch(64, Duration::from_millis(50), &mut out));
        assert!(out.is_empty());
    }

    #[test]
    fn linger_coalesces_requests_arriving_apart() {
        let q = Arc::new(BatchQueue::new());
        let (first, _rx1) = pending(1);
        q.push(first);
        let q2 = Arc::clone(&q);
        let pusher = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            let (late, rx) = pending(2);
            q2.push(late);
            rx
        });
        let mut out = Vec::new();
        assert!(q.pop_batch(64, Duration::from_millis(500), &mut out));
        // The second request arrived well inside the linger window, so one
        // batch carries both.
        assert_eq!(out.len(), 2);
        drop(pusher.join().unwrap());
    }

    #[test]
    fn full_word_skips_the_linger() {
        let q = BatchQueue::new();
        let mut rxs = Vec::new();
        for id in 0..64 {
            let (p, rx) = pending(id);
            q.push(p);
            rxs.push(rx);
        }
        let start = Instant::now();
        let mut out = Vec::new();
        // A pathological linger must not delay an already-full word.
        assert!(q.pop_batch(64, Duration::from_secs(5), &mut out));
        assert_eq!(out.len(), 64);
        assert!(start.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn push_after_close_drops_the_request_and_its_reply_sender() {
        let q = BatchQueue::new();
        q.close();
        let (p, rx) = pending(1);
        q.push(p);
        assert_eq!(q.depth(), 0, "closed queue must not retain requests");
        // The reply Sender must have been dropped with the request, so a
        // writer thread blocked on this channel disconnects instead of
        // waiting forever.
        assert!(rx.recv().is_err());
        let mut out = Vec::new();
        assert!(!q.pop_batch(64, Duration::ZERO, &mut out));
    }

    #[test]
    fn blocked_worker_wakes_on_close() {
        let q = Arc::new(BatchQueue::new());
        let q2 = Arc::clone(&q);
        let worker = std::thread::spawn(move || {
            let mut out = Vec::new();
            q2.pop_batch(64, Duration::from_millis(1), &mut out)
        });
        std::thread::sleep(Duration::from_millis(5));
        q.close();
        assert!(!worker.join().unwrap());
    }
}
