//! Deterministic, seeded fault injection for the serving stack.
//!
//! A [`FaultPlan`] describes a reproducible schedule of I/O misbehaviour:
//! short reads/writes, spurious `EAGAIN`/`EINTR`, delayed poller wakeups,
//! and injected worker panics. The plan is pure configuration; the
//! [`FaultInjector`] built from it owns a deterministic splitmix64 stream,
//! so the same seed always yields the same fault sequence for the same
//! sequence of injection-point visits on a single thread — and a bounded,
//! seed-stable distribution under concurrency.
//!
//! Zero-cost-when-off: the server holds an `Option<Arc<FaultInjector>>`;
//! with `None` every injection point is a single branch on a niche-encoded
//! pointer, and the `vendor/epoll` wait hook is never installed (one
//! relaxed atomic load per wait).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A seeded, deterministic schedule of injected faults.
///
/// Rates are expressed as "one in N" (`0` disables that fault class).
/// Build a varied mix straight from a seed with [`FaultPlan::from_seed`],
/// or construct the struct literally for a targeted test.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// Seed for the injector's deterministic random stream.
    pub seed: u64,
    /// One in N reads is truncated to a single byte (`0` = never).
    pub short_read: u32,
    /// One in N writes is truncated to a single byte (`0` = never).
    pub short_write: u32,
    /// One in N reads/writes fails with spurious `EAGAIN` (`0` = never).
    pub eagain: u32,
    /// One in N reads/writes fails with `EINTR` (`0` = never).
    pub eintr: u32,
    /// One in N poller wakeups is delayed (`0` = never).
    pub delay: u32,
    /// Upper bound on an injected wakeup delay.
    pub max_delay: Duration,
    /// One in N worker batches panics after evaluation (`0` = never).
    pub panic: u32,
}

impl FaultPlan {
    /// Derives a varied fault mix from a single seed: every fault class
    /// is enabled with a seed-dependent rate, so a sweep over seeds
    /// exercises storms of each class alone and in combination.
    pub fn from_seed(seed: u64) -> FaultPlan {
        let mut s = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut next = move || {
            s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
            splitmix64(s)
        };
        // Rates land in [3, 18]: frequent enough to bite within a short
        // chaos run, rare enough that every run still makes progress.
        let mut rate = |enabled_one_in: u64| -> u32 {
            if next() % enabled_one_in == 0 {
                0 // this class is off for this seed
            } else {
                3 + (next() % 16) as u32
            }
        };
        FaultPlan {
            seed,
            short_read: rate(5),
            short_write: rate(5),
            eagain: rate(4),
            eintr: rate(4),
            delay: rate(3),
            max_delay: Duration::from_micros(200 + next() % 2_800),
            panic: if next() % 3 == 0 {
                0
            } else {
                40 + (next() % 60) as u32
            },
        }
    }

    /// A plan that injects nothing — useful as a baseline control.
    pub fn quiet(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            short_read: 0,
            short_write: 0,
            eagain: 0,
            eintr: 0,
            delay: 0,
            max_delay: Duration::ZERO,
            panic: 0,
        }
    }
}

/// What an injection point on the byte-I/O path should do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum IoFault {
    /// Truncate the transfer to one byte.
    Short,
    /// Fail with spurious `WouldBlock` before touching the fd.
    Again,
    /// Fail with `Interrupted` before touching the fd.
    Intr,
}

/// Live fault source built from a [`FaultPlan`]. Shared (`Arc`) between
/// the poller thread and workers; the splitmix64 state is a relaxed
/// atomic, so concurrent rolls stay deterministic per seed in aggregate
/// without any locking on the hot path.
#[derive(Debug)]
pub(crate) struct FaultInjector {
    plan: FaultPlan,
    state: AtomicU64,
}

impl FaultInjector {
    pub(crate) fn new(plan: FaultPlan) -> FaultInjector {
        let state = AtomicU64::new(plan.seed.wrapping_mul(0x2545_f491_4f6c_dd1d) | 1);
        FaultInjector { plan, state }
    }

    /// One pseudo-random draw from the deterministic stream.
    fn draw(&self) -> u64 {
        let prev = self
            .state
            .fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed);
        splitmix64(prev)
    }

    /// True roughly one time in `one_in` (never for `one_in == 0`).
    fn roll(&self, one_in: u32) -> bool {
        one_in != 0 && self.draw().is_multiple_of(u64::from(one_in))
    }

    /// Fault decision for a socket read, if any.
    pub(crate) fn on_read(&self) -> Option<IoFault> {
        if self.roll(self.plan.eagain) {
            Some(IoFault::Again)
        } else if self.roll(self.plan.eintr) {
            Some(IoFault::Intr)
        } else if self.roll(self.plan.short_read) {
            Some(IoFault::Short)
        } else {
            None
        }
    }

    /// Fault decision for a socket write, if any.
    pub(crate) fn on_write(&self) -> Option<IoFault> {
        if self.roll(self.plan.eagain) {
            Some(IoFault::Again)
        } else if self.roll(self.plan.eintr) {
            Some(IoFault::Intr)
        } else if self.roll(self.plan.short_write) {
            Some(IoFault::Short)
        } else {
            None
        }
    }

    /// Delay to impose on the next poller wakeup, if any. Bounded by the
    /// plan's `max_delay` so chaos runs always make forward progress.
    pub(crate) fn wait_fault(&self) -> Option<Duration> {
        if self.roll(self.plan.delay) {
            let span = self.plan.max_delay.as_micros().max(1) as u64;
            Some(Duration::from_micros(self.draw() % span))
        } else {
            None
        }
    }

    /// Whether the current worker batch should panic after evaluation.
    pub(crate) fn should_panic(&self) -> bool {
        self.roll(self.plan.panic)
    }
}

/// Marker payload carried by injected worker panics, so the chaos suite's
/// panic hook can tell deliberate crashes from real bugs.
#[derive(Debug)]
pub struct InjectedPanic;

/// splitmix64 finalizer — the same mixing constant set the vendored
/// `rand` shim uses; good avalanche behaviour, trivially deterministic.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Produces `n` torn copies of a model file: each copy is truncated at a
/// seed-derived offset and, for odd indices, additionally has one byte
/// flipped before the cut. Used by hot-swap robustness tests to simulate
/// a partially-written model artifact.
pub fn torn_copies(bytes: &[u8], seed: u64, n: usize) -> Vec<Vec<u8>> {
    let mut out = Vec::with_capacity(n);
    let mut s = seed;
    for i in 0..n {
        s = splitmix64(s.wrapping_add(i as u64));
        // Cut somewhere strictly inside the file (never empty, never whole).
        let cut = 1 + (s as usize) % bytes.len().saturating_sub(1).max(1);
        let mut torn = bytes[..cut].to_vec();
        if i % 2 == 1 && !torn.is_empty() {
            let pos = (splitmix64(s) as usize) % torn.len();
            torn[pos] ^= 1 << (s % 8);
        }
        out.push(torn);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let a = FaultInjector::new(FaultPlan::from_seed(7));
        let b = FaultInjector::new(FaultPlan::from_seed(7));
        for _ in 0..256 {
            assert_eq!(a.draw(), b.draw());
        }
    }

    #[test]
    fn quiet_plan_never_fires() {
        let inj = FaultInjector::new(FaultPlan::quiet(3));
        for _ in 0..1024 {
            assert_eq!(inj.on_read(), None);
            assert_eq!(inj.on_write(), None);
            assert!(inj.wait_fault().is_none());
            assert!(!inj.should_panic());
        }
    }

    #[test]
    fn from_seed_varies_mixes_and_fires() {
        // Across a seed sweep, every fault class must be enabled somewhere
        // and actually fire, and delays must respect the plan bound.
        let mut fired = [false; 4];
        for seed in 0..32u64 {
            let plan = FaultPlan::from_seed(seed);
            let inj = FaultInjector::new(plan.clone());
            for _ in 0..512 {
                match inj.on_read() {
                    Some(IoFault::Short) => fired[0] = true,
                    Some(IoFault::Again) => fired[1] = true,
                    Some(IoFault::Intr) => fired[2] = true,
                    None => {}
                }
                if let Some(d) = inj.wait_fault() {
                    fired[3] = true;
                    assert!(d <= plan.max_delay);
                }
            }
        }
        assert_eq!(fired, [true; 4], "every fault class fires in the sweep");
    }

    #[test]
    fn torn_copies_are_strict_prefixes_or_corrupted() {
        let original: Vec<u8> = (0..251u32).map(|i| (i * 7) as u8).collect();
        let torn = torn_copies(&original, 99, 16);
        assert_eq!(torn.len(), 16);
        for t in &torn {
            assert!(!t.is_empty() && t.len() < original.len());
        }
        // Determinism: same seed, same tears.
        assert_eq!(torn, torn_copies(&original, 99, 16));
    }
}
