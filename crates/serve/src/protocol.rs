//! The wire protocol: length-prefixed binary frames over TCP.
//!
//! All integers are little-endian. A connection opens with a one-shot
//! **hello** from the server advertising every model it serves:
//!
//! ```text
//! "POETSRV2"   (8 bytes)   magic + protocol version
//! model_count  (u16)
//! model_count × {
//!     model_id     (u16)   request routing key
//!     num_features (u32)   row width this model expects
//!     classes      (u32)   number of classes its predictions range over
//!     name_len     (u8)    ++ name (UTF-8, ≤ 255 bytes)
//! }
//! ```
//!
//! After the hello, the client sends **request frames** and the server
//! answers with **response frames**, in any interleaving — responses carry
//! the request id back, so a client may pipeline as deeply as it likes and
//! the server may reorder freely (batched requests complete together):
//!
//! ```text
//! frame    := payload_len (u32) ++ payload
//! request  := model_id (u16) ++ request_id (u64)
//!             ++ row_bits (ceil(num_features / 8) bytes)
//! response := request_id (u64) ++ status (u8) ++ class (u16)
//! ```
//!
//! Row bits are packed LSB-first: feature `j` is bit `j % 8` of byte
//! `j / 8`, the natural truncation of [`BitVec`]'s little-endian word
//! layout. Padding bits past `num_features` in the last byte are ignored.
//!
//! Unlike `POETSRV1`, a malformed request no longer silently kills the
//! connection: the length prefix keeps the stream frame-aligned, so the
//! server answers with a typed error status and keeps serving —
//! [`STATUS_UNKNOWN_MODEL`] when `model_id` is not in the hello table,
//! [`STATUS_BAD_REQUEST`] when the row width does not match that model
//! (or the payload is shorter than a request header; the echoed id is
//! then [`BAD_FRAME_ID`]). Only an unparseable *frame* — a length prefix
//! past the server's limit — still drops the connection, because the
//! stream can no longer be resynchronised.
//!
//! # Load shedding
//!
//! The server's pending queues are **bounded**. A well-formed request
//! that arrives while every queue is full is *shed*: it is answered
//! immediately with [`STATUS_OVERLOADED`] (the request id echoed,
//! `class` meaningless) and never reaches the engine. The connection
//! survives — overload is a property of the server's current load, not
//! of the client's stream — and the client should retry with backoff.
//! Shedding is what keeps server memory and the queueing delay of
//! *accepted* requests bounded under open-loop overload: without it, an
//! arrival rate above engine capacity grows the pending queue (and every
//! latency percentile) without bound.
//!
//! When the server is configured with a per-request deadline, an
//! *accepted* request that waits in its queue longer than the deadline is
//! shed with [`STATUS_DEADLINE_EXCEEDED`] instead of being evaluated:
//! under transient overload the server sheds stale work rather than
//! burning engine time on answers nobody is still waiting for.

use std::io::{self, Read, Write};

use poetbin_bits::BitVec;

/// Magic string opening every connection; bump the trailing digit to
/// version the protocol.
pub const HELLO_MAGIC: &[u8; 8] = b"POETSRV2";

/// Response status: `class` carries the model's prediction.
pub const STATUS_OK: u8 = 0;
/// Response status: the request named a `model_id` the hello never
/// advertised; `class` is meaningless.
pub const STATUS_UNKNOWN_MODEL: u8 = 1;
/// Response status: the request payload was malformed for its model
/// (wrong row width, or too short to carry a request header).
pub const STATUS_BAD_REQUEST: u8 = 2;
/// Response status: the request was well-formed but every bounded
/// pending queue was full, so the server shed it before evaluation;
/// `class` is meaningless. The connection survives — retry with backoff.
pub const STATUS_OVERLOADED: u8 = 3;
/// Response status: the request was accepted but aged past the server's
/// per-request deadline while queued, so it was shed before evaluation;
/// `class` is meaningless. The connection survives — the answer would
/// have arrived too late to be useful, so the server spent no engine
/// time on it. Retry with backoff if the result is still wanted.
pub const STATUS_DEADLINE_EXCEEDED: u8 = 4;

/// The request id echoed on a [`STATUS_BAD_REQUEST`] response to a
/// payload too short to carry a real id.
pub const BAD_FRAME_ID: u64 = u64::MAX;

/// One served model as advertised in the hello.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModelInfo {
    /// Routing key requests name the model by.
    pub id: u16,
    /// Row width the model expects.
    pub num_features: usize,
    /// Number of classes its predictions range over.
    pub classes: usize,
    /// Human-readable model name (file stem by convention).
    pub name: String,
}

/// Bytes a packed feature row occupies on the wire.
pub fn row_bytes(num_features: usize) -> usize {
    num_features.div_ceil(8)
}

/// Wire size of a request payload (model id + request id + packed row).
pub fn request_payload_len(num_features: usize) -> usize {
    REQUEST_HEADER_LEN + row_bytes(num_features)
}

/// Bytes of a request payload before the packed row: model id + request
/// id.
pub const REQUEST_HEADER_LEN: usize = 10;

/// Wire size of a response payload.
pub const RESPONSE_LEN: usize = 11;

/// Writes the server hello advertising `models`.
///
/// # Errors
///
/// Propagates the underlying I/O error.
///
/// # Panics
///
/// Panics when a model name exceeds 255 UTF-8 bytes, a width or class
/// count exceeds `u32`, or there are more than `u16::MAX` models.
pub fn write_hello(w: &mut impl Write, models: &[ModelInfo]) -> io::Result<()> {
    let mut buf = Vec::with_capacity(10 + models.len() * 16);
    buf.extend_from_slice(HELLO_MAGIC);
    let count = u16::try_from(models.len()).expect("too many models for one hello");
    buf.extend_from_slice(&count.to_le_bytes());
    for m in models {
        let name = m.name.as_bytes();
        let name_len = u8::try_from(name.len()).expect("model name over 255 bytes");
        buf.extend_from_slice(&m.id.to_le_bytes());
        let width = u32::try_from(m.num_features).expect("model width exceeds u32");
        let classes = u32::try_from(m.classes).expect("class count exceeds u32");
        buf.extend_from_slice(&width.to_le_bytes());
        buf.extend_from_slice(&classes.to_le_bytes());
        buf.push(name_len);
        buf.extend_from_slice(name);
    }
    w.write_all(&buf)
}

/// Reads and validates the server hello, returning the advertised model
/// table.
///
/// # Errors
///
/// Returns [`io::ErrorKind::InvalidData`] when the magic does not match
/// or a model name is not UTF-8, or the underlying I/O error.
pub fn read_hello(r: &mut impl Read) -> io::Result<Vec<ModelInfo>> {
    let mut head = [0u8; 10];
    r.read_exact(&mut head)?;
    if &head[..8] != HELLO_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a POETSRV2 endpoint",
        ));
    }
    let count = u16::from_le_bytes(head[8..10].try_into().unwrap()) as usize;
    let mut models = Vec::with_capacity(count);
    for _ in 0..count {
        let mut fixed = [0u8; 11];
        r.read_exact(&mut fixed)?;
        let id = u16::from_le_bytes(fixed[..2].try_into().unwrap());
        let num_features = u32::from_le_bytes(fixed[2..6].try_into().unwrap()) as usize;
        let classes = u32::from_le_bytes(fixed[6..10].try_into().unwrap()) as usize;
        let mut name = vec![0u8; fixed[10] as usize];
        r.read_exact(&mut name)?;
        let name = String::from_utf8(name)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "model name is not UTF-8"))?;
        models.push(ModelInfo {
            id,
            num_features,
            classes,
            name,
        });
    }
    Ok(models)
}

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Propagates the underlying I/O error.
///
/// # Panics
///
/// Panics if the payload exceeds `u32::MAX` bytes.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len()).expect("frame payload too large");
    // One write call per frame: tiny frames (a response is 15 bytes) must
    // not turn into two TCP segments under TCP_NODELAY.
    let mut buf = Vec::with_capacity(4 + payload.len());
    buf.extend_from_slice(&len.to_le_bytes());
    buf.extend_from_slice(payload);
    w.write_all(&buf)
}

/// Reads one length-prefixed frame; `Ok(None)` means the peer closed the
/// connection cleanly at a frame boundary.
///
/// # Errors
///
/// Returns [`io::ErrorKind::InvalidData`] when the declared payload length
/// exceeds `max_payload` (a garbage or hostile length prefix must not
/// trigger an allocation), [`io::ErrorKind::UnexpectedEof`] on mid-frame
/// close, or the underlying I/O error.
pub fn read_frame(r: &mut impl Read, max_payload: usize) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0usize;
    while filled < 4 {
        let n = r.read(&mut len_buf[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(io::ErrorKind::UnexpectedEof.into());
        }
        filled += n;
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > max_payload {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {max_payload}-byte limit"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Encodes a request payload for `row` aimed at `model_id`.
pub fn encode_request(model_id: u16, id: u64, row: &BitVec) -> Vec<u8> {
    let nbytes = row_bytes(row.len());
    let mut out = Vec::with_capacity(REQUEST_HEADER_LEN + nbytes);
    out.extend_from_slice(&model_id.to_le_bytes());
    out.extend_from_slice(&id.to_le_bytes());
    for word in row.as_words() {
        out.extend_from_slice(&word.to_le_bytes());
    }
    out.truncate(REQUEST_HEADER_LEN + nbytes);
    out
}

/// Splits a request payload into `(model_id, request_id, row_bits)`;
/// `None` when the payload cannot even carry a request header. The row
/// is *not* validated here — its expected width depends on the model the
/// header names; pass the bits to [`decode_row`] once the model is known.
pub fn decode_request(payload: &[u8]) -> Option<(u16, u64, &[u8])> {
    if payload.len() < REQUEST_HEADER_LEN {
        return None;
    }
    let model_id = u16::from_le_bytes(payload[..2].try_into().unwrap());
    let id = u64::from_le_bytes(payload[2..10].try_into().unwrap());
    Some((model_id, id, &payload[REQUEST_HEADER_LEN..]))
}

/// Decodes packed row bits against a model's width; `None` when the byte
/// count does not match.
pub fn decode_row(bits: &[u8], num_features: usize) -> Option<BitVec> {
    if bits.len() != row_bytes(num_features) {
        return None;
    }
    let words: Vec<u64> = bits
        .chunks(8)
        .map(|chunk| {
            let mut w = [0u8; 8];
            w[..chunk.len()].copy_from_slice(chunk);
            u64::from_le_bytes(w)
        })
        .collect();
    // from_words clears padding bits past num_features in the last word.
    Some(BitVec::from_words(words, num_features))
}

/// Encodes a response payload.
pub fn encode_response(id: u64, status: u8, class: u16) -> [u8; RESPONSE_LEN] {
    let mut out = [0u8; RESPONSE_LEN];
    out[..8].copy_from_slice(&id.to_le_bytes());
    out[8] = status;
    out[9..].copy_from_slice(&class.to_le_bytes());
    out
}

/// Decodes a response payload into `(id, status, class)`; `None` on a
/// malformed length.
pub fn decode_response(payload: &[u8]) -> Option<(u64, u8, u16)> {
    if payload.len() != RESPONSE_LEN {
        return None;
    }
    let id = u64::from_le_bytes(payload[..8].try_into().unwrap());
    let status = payload[8];
    let class = u16::from_le_bytes(payload[9..].try_into().unwrap());
    Some((id, status, class))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrips_at_ragged_widths() {
        for f in [1usize, 7, 8, 9, 63, 64, 65, 130] {
            let row = BitVec::from_fn(f, |j| (j * 13 + f) % 3 == 0);
            let payload = encode_request(3, 77, &row);
            assert_eq!(payload.len(), request_payload_len(f));
            let (model, id, bits) = decode_request(&payload).expect("well-formed");
            assert_eq!((model, id), (3, 77));
            assert_eq!(
                decode_row(bits, f).expect("width matches"),
                row,
                "width {f}"
            );
        }
    }

    #[test]
    fn short_requests_and_wrong_widths_are_rejected() {
        let row = BitVec::from_fn(16, |j| j % 2 == 0);
        let payload = encode_request(0, 1, &row);
        assert!(decode_request(&payload[..9]).is_none(), "header cut short");
        let (_, _, bits) = decode_request(&payload).unwrap();
        assert!(decode_row(bits, 17).is_none(), "17 features need 3 bytes");
        assert!(decode_row(bits, 24).is_none());
        assert!(decode_row(bits, 16).is_some());
    }

    #[test]
    fn response_roundtrips() {
        let payload = encode_response(u64::MAX, STATUS_OK, 9);
        assert_eq!(decode_response(&payload), Some((u64::MAX, STATUS_OK, 9)));
        let payload = encode_response(7, STATUS_UNKNOWN_MODEL, 0);
        assert_eq!(
            decode_response(&payload),
            Some((7, STATUS_UNKNOWN_MODEL, 0))
        );
        let payload = encode_response(8, STATUS_OVERLOADED, 0);
        assert_eq!(decode_response(&payload), Some((8, STATUS_OVERLOADED, 0)));
        assert_eq!(decode_response(&payload[..9]), None);
    }

    #[test]
    fn frames_roundtrip_over_a_buffer() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"abc").unwrap();
        write_frame(&mut wire, b"").unwrap();
        let mut r = wire.as_slice();
        assert_eq!(
            read_frame(&mut r, 16).unwrap().as_deref(),
            Some(&b"abc"[..])
        );
        assert_eq!(read_frame(&mut r, 16).unwrap().as_deref(), Some(&b""[..]));
        assert_eq!(read_frame(&mut r, 16).unwrap(), None);
    }

    #[test]
    fn oversized_and_truncated_frames_error() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &[0u8; 100]).unwrap();
        let err = read_frame(&mut wire.as_slice(), 64).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // A frame cut mid-payload (or mid-prefix) is an UnexpectedEof, not
        // a clean end-of-stream.
        for cut in [2usize, 7] {
            let err = read_frame(&mut &wire[..cut], 256).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut {cut}");
        }
    }

    #[test]
    fn hello_roundtrips_a_model_table() {
        let models = vec![
            ModelInfo {
                id: 0,
                num_features: 512,
                classes: 10,
                name: "mnist".into(),
            },
            ModelInfo {
                id: 1,
                num_features: 48,
                classes: 4,
                name: "deep".into(),
            },
        ];
        let mut wire = Vec::new();
        write_hello(&mut wire, &models).unwrap();
        assert_eq!(read_hello(&mut wire.as_slice()).unwrap(), models);

        wire[0] = b'X';
        let err = read_hello(&mut wire.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn hello_with_no_models_is_legal() {
        let mut wire = Vec::new();
        write_hello(&mut wire, &[]).unwrap();
        assert_eq!(read_hello(&mut wire.as_slice()).unwrap(), Vec::new());
    }
}
