//! The wire protocol: length-prefixed binary frames over TCP.
//!
//! All integers are little-endian. A connection opens with a one-shot
//! **hello** from the server:
//!
//! ```text
//! "POETSRV1"  (8 bytes)   magic + protocol version
//! num_features (u32)      row width the model expects
//! classes      (u32)      number of classes predictions range over
//! ```
//!
//! After the hello, the client sends **request frames** and the server
//! answers with **response frames**, in any interleaving — responses carry
//! the request id back, so a client may pipeline as deeply as it likes and
//! the server may reorder freely (batched requests complete together):
//!
//! ```text
//! frame    := payload_len (u32) ++ payload
//! request  := request_id (u64) ++ row_bits (ceil(num_features / 8) bytes)
//! response := request_id (u64) ++ class (u16)
//! ```
//!
//! Row bits are packed LSB-first: feature `j` is bit `j % 8` of byte
//! `j / 8`, the natural truncation of [`BitVec`]'s little-endian word
//! layout. Padding bits past `num_features` in the last byte are ignored.
//! A request whose payload length differs from `8 + ceil(num_features/8)`
//! is a protocol violation and the server drops the connection.

use std::io::{self, Read, Write};

use poetbin_bits::BitVec;

/// Magic string opening every connection; bump the trailing digit to
/// version the protocol.
pub const HELLO_MAGIC: &[u8; 8] = b"POETSRV1";

/// Bytes a packed feature row occupies on the wire.
pub fn row_bytes(num_features: usize) -> usize {
    num_features.div_ceil(8)
}

/// Wire size of a request payload (id + packed row).
pub fn request_payload_len(num_features: usize) -> usize {
    8 + row_bytes(num_features)
}

/// Writes the server hello.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_hello(w: &mut impl Write, num_features: u32, classes: u32) -> io::Result<()> {
    let mut buf = [0u8; 16];
    buf[..8].copy_from_slice(HELLO_MAGIC);
    buf[8..12].copy_from_slice(&num_features.to_le_bytes());
    buf[12..16].copy_from_slice(&classes.to_le_bytes());
    w.write_all(&buf)
}

/// Reads and validates the server hello, returning
/// `(num_features, classes)`.
///
/// # Errors
///
/// Returns [`io::ErrorKind::InvalidData`] when the magic does not match,
/// or the underlying I/O error.
pub fn read_hello(r: &mut impl Read) -> io::Result<(u32, u32)> {
    let mut buf = [0u8; 16];
    r.read_exact(&mut buf)?;
    if &buf[..8] != HELLO_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a POETSRV1 endpoint",
        ));
    }
    let num_features = u32::from_le_bytes(buf[8..12].try_into().unwrap());
    let classes = u32::from_le_bytes(buf[12..16].try_into().unwrap());
    Ok((num_features, classes))
}

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Propagates the underlying I/O error.
///
/// # Panics
///
/// Panics if the payload exceeds `u32::MAX` bytes.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len()).expect("frame payload too large");
    // One write call per frame: tiny frames (a response is 14 bytes) must
    // not turn into two TCP segments under TCP_NODELAY.
    let mut buf = Vec::with_capacity(4 + payload.len());
    buf.extend_from_slice(&len.to_le_bytes());
    buf.extend_from_slice(payload);
    w.write_all(&buf)
}

/// Reads one length-prefixed frame; `Ok(None)` means the peer closed the
/// connection cleanly at a frame boundary.
///
/// # Errors
///
/// Returns [`io::ErrorKind::InvalidData`] when the declared payload length
/// exceeds `max_payload` (a garbage or hostile length prefix must not
/// trigger an allocation), [`io::ErrorKind::UnexpectedEof`] on mid-frame
/// close, or the underlying I/O error.
pub fn read_frame(r: &mut impl Read, max_payload: usize) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0usize;
    while filled < 4 {
        let n = r.read(&mut len_buf[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(io::ErrorKind::UnexpectedEof.into());
        }
        filled += n;
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > max_payload {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {max_payload}-byte limit"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Encodes a request payload for `row`.
pub fn encode_request(id: u64, row: &BitVec) -> Vec<u8> {
    let nbytes = row_bytes(row.len());
    let mut out = Vec::with_capacity(8 + nbytes);
    out.extend_from_slice(&id.to_le_bytes());
    for word in row.as_words() {
        out.extend_from_slice(&word.to_le_bytes());
    }
    out.truncate(8 + nbytes);
    out
}

/// Decodes a request payload into `(id, row)`; `None` when the payload
/// length does not match the model's row width.
pub fn decode_request(payload: &[u8], num_features: usize) -> Option<(u64, BitVec)> {
    if payload.len() != request_payload_len(num_features) {
        return None;
    }
    let id = u64::from_le_bytes(payload[..8].try_into().unwrap());
    let bits = &payload[8..];
    let words: Vec<u64> = bits
        .chunks(8)
        .map(|chunk| {
            let mut w = [0u8; 8];
            w[..chunk.len()].copy_from_slice(chunk);
            u64::from_le_bytes(w)
        })
        .collect();
    // from_words clears padding bits past num_features in the last word.
    Some((id, BitVec::from_words(words, num_features)))
}

/// Encodes a response payload.
pub fn encode_response(id: u64, class: u16) -> [u8; 10] {
    let mut out = [0u8; 10];
    out[..8].copy_from_slice(&id.to_le_bytes());
    out[8..].copy_from_slice(&class.to_le_bytes());
    out
}

/// Decodes a response payload into `(id, class)`; `None` on a malformed
/// length.
pub fn decode_response(payload: &[u8]) -> Option<(u64, u16)> {
    if payload.len() != 10 {
        return None;
    }
    let id = u64::from_le_bytes(payload[..8].try_into().unwrap());
    let class = u16::from_le_bytes(payload[8..].try_into().unwrap());
    Some((id, class))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrips_at_ragged_widths() {
        for f in [1usize, 7, 8, 9, 63, 64, 65, 130] {
            let row = BitVec::from_fn(f, |j| (j * 13 + f) % 3 == 0);
            let payload = encode_request(77, &row);
            assert_eq!(payload.len(), request_payload_len(f));
            let (id, back) = decode_request(&payload, f).expect("well-formed");
            assert_eq!(id, 77);
            assert_eq!(back, row, "width {f}");
        }
    }

    #[test]
    fn request_with_wrong_width_is_rejected() {
        let row = BitVec::from_fn(16, |j| j % 2 == 0);
        let payload = encode_request(1, &row);
        assert!(decode_request(&payload, 17).is_none());
        assert!(decode_request(&payload[..9], 16).is_none());
    }

    #[test]
    fn response_roundtrips() {
        let payload = encode_response(u64::MAX, 9);
        assert_eq!(decode_response(&payload), Some((u64::MAX, 9)));
        assert_eq!(decode_response(&payload[..9]), None);
    }

    #[test]
    fn frames_roundtrip_over_a_buffer() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"abc").unwrap();
        write_frame(&mut wire, b"").unwrap();
        let mut r = wire.as_slice();
        assert_eq!(
            read_frame(&mut r, 16).unwrap().as_deref(),
            Some(&b"abc"[..])
        );
        assert_eq!(read_frame(&mut r, 16).unwrap().as_deref(), Some(&b""[..]));
        assert_eq!(read_frame(&mut r, 16).unwrap(), None);
    }

    #[test]
    fn oversized_and_truncated_frames_error() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &[0u8; 100]).unwrap();
        let err = read_frame(&mut wire.as_slice(), 64).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // A frame cut mid-payload (or mid-prefix) is an UnexpectedEof, not
        // a clean end-of-stream.
        for cut in [2usize, 7] {
            let err = read_frame(&mut &wire[..cut], 256).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut {cut}");
        }
    }

    #[test]
    fn hello_roundtrips_and_rejects_bad_magic() {
        let mut wire = Vec::new();
        write_hello(&mut wire, 512, 10).unwrap();
        assert_eq!(read_hello(&mut wire.as_slice()).unwrap(), (512, 10));
        wire[0] = b'X';
        let err = read_hello(&mut wire.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
