//! A small blocking client for the serving protocol, used by the load
//! generator and the integration tests.

use std::io::{self, BufReader};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use poetbin_bits::BitVec;

use crate::protocol::{
    self, ModelInfo, STATUS_BAD_REQUEST, STATUS_DEADLINE_EXCEEDED, STATUS_OK, STATUS_OVERLOADED,
    STATUS_UNKNOWN_MODEL,
};

/// The server's answer to one request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Response {
    /// The model's prediction.
    Class(usize),
    /// The request named a model id the server does not serve.
    UnknownModel,
    /// The request was malformed for its model (wrong row width, or too
    /// short to parse).
    BadRequest,
    /// The server shed the request because every bounded pending queue
    /// was full; retry with backoff ([`Client::predict_with_backoff`]).
    /// The connection is still good.
    Overloaded,
    /// The server shed the request because it aged past the per-request
    /// deadline while queued; retry with backoff
    /// ([`Client::predict_with_backoff`]). The connection is still good.
    DeadlineExceeded,
}

impl Response {
    /// Whether this response is a transient shed
    /// ([`Overloaded`](Self::Overloaded) /
    /// [`DeadlineExceeded`](Self::DeadlineExceeded)) that a client may
    /// retry with backoff on the same connection.
    pub fn is_retryable(self) -> bool {
        matches!(self, Response::Overloaded | Response::DeadlineExceeded)
    }
}

/// Jittered-exponential-backoff schedule for retrying transient sheds
/// ([`Response::Overloaded`] / [`Response::DeadlineExceeded`]).
///
/// Attempt `k` (0-based) sleeps a uniformly random ("full jitter")
/// duration in `[0, min(cap, base · 2^k)]`, drawn from a deterministic
/// stream seeded by [`seed`](Self::seed) — so a seeded load run retries
/// on a reproducible schedule. Full jitter decorrelates retrying
/// clients: after a shared overload spike, their retries spread over the
/// window instead of arriving as a synchronized second spike.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Retries after the first attempt (`0` disables retrying).
    pub max_retries: u32,
    /// Backoff cap base: attempt `k` draws from `[0, base · 2^k]`.
    pub base: Duration,
    /// Upper bound on any single sleep, whatever the attempt number.
    pub cap: Duration,
    /// Seed for the jitter stream (deterministic per policy value).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 5,
            base: Duration::from_micros(500),
            cap: Duration::from_millis(20),
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The jittered sleep before retry attempt `attempt` (0-based).
    /// `salt` decorrelates streams that share a policy value (pass a
    /// request id or client index). Deterministic in
    /// `(seed, salt, attempt)`.
    pub fn backoff(&self, attempt: u32, salt: u64) -> Duration {
        let ceiling = self
            .base
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.cap);
        let span = ceiling.as_nanos().max(1) as u64;
        // splitmix64 over (seed, salt, attempt): full jitter in [0, ceiling].
        let mut z = self
            .seed
            .wrapping_add(salt.wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .wrapping_add(u64::from(attempt).wrapping_mul(0xbf58_476d_1ce4_e5b9));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        Duration::from_nanos(z % span)
    }
}

/// A connected protocol client.
///
/// The server may serve several models; the hello advertises all of them
/// (see [`Client::models`]) and every request names its target. The
/// un-suffixed methods ([`Client::send`], [`Client::predict`],
/// [`Client::num_features`], …) address model 0 — the common
/// single-model case — while the `_to`/`_on` variants take an explicit
/// model id.
///
/// Requests may be pipelined: any number of [`Client::send`] calls may be
/// outstanding before the matching [`Client::recv`] calls, and the server
/// is free to answer out of order (it answers a whole batch at once).
/// [`Client::predict`] is the simple closed-loop form; an open-loop
/// caller splits the client into independently owned halves with
/// [`Client::into_split`].
pub struct Client {
    sender: ClientSender,
    receiver: ClientReceiver,
}

impl Client {
    /// Connects and consumes the server hello.
    ///
    /// # Errors
    ///
    /// Propagates connection failures; [`io::ErrorKind::InvalidData`] when
    /// the peer is not a POETSRV2 server or advertises no models.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        let mut reader = BufReader::new(stream);
        let models = protocol::read_hello(&mut reader)?;
        if models.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "server advertises no models",
            ));
        }
        Ok(Client {
            sender: ClientSender {
                writer,
                models,
                next_id: 0,
            },
            receiver: ClientReceiver { reader },
        })
    }

    /// Every model the server advertised, in hello order.
    pub fn models(&self) -> &[ModelInfo] {
        &self.sender.models
    }

    /// The advertised model with the given name, if any.
    pub fn model(&self, name: &str) -> Option<&ModelInfo> {
        self.sender.models.iter().find(|m| m.name == name)
    }

    /// Row width model 0 expects.
    pub fn num_features(&self) -> usize {
        self.sender.models[0].num_features
    }

    /// Number of classes model 0's predictions range over.
    pub fn classes(&self) -> usize {
        self.sender.models[0].classes
    }

    /// Sends one request to model 0, returning the id that will come back
    /// with its response.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    ///
    /// # Panics
    ///
    /// Panics if `row.len()` differs from model 0's feature count.
    pub fn send(&mut self, row: &BitVec) -> io::Result<u64> {
        self.sender.send(row)
    }

    /// Sends one request to `model_id`, returning the id that will come
    /// back with its response.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    ///
    /// # Panics
    ///
    /// Panics if the server never advertised `model_id`, or if
    /// `row.len()` differs from that model's feature count. To probe the
    /// server's own rejection path, use
    /// [`ClientSender::send_raw`](ClientSender::send_raw).
    pub fn send_to(&mut self, model_id: u16, row: &BitVec) -> io::Result<u64> {
        self.sender.send_to(model_id, row)
    }

    /// Receives the next response as `(request_id, response)`.
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::UnexpectedEof`] when the server closes the
    /// connection (e.g. after an unparseable frame), or
    /// [`io::ErrorKind::InvalidData`] on a malformed response.
    pub fn recv(&mut self) -> io::Result<(u64, Response)> {
        self.receiver.recv()
    }

    /// Sends one row to model 0 and blocks for its prediction.
    ///
    /// # Errors
    ///
    /// As for [`Client::predict_on`].
    pub fn predict(&mut self, row: &BitVec) -> io::Result<usize> {
        self.predict_on(0, row)
    }

    /// Sends one row to `model_id` and blocks for its prediction.
    ///
    /// # Errors
    ///
    /// As for [`Client::send_to`] / [`Client::recv`], plus
    /// [`io::ErrorKind::InvalidData`] if the server rejects the request
    /// or the response carries a different request id (only possible when
    /// mixed with pipelined [`Client::send`] calls whose responses were
    /// never collected), [`io::ErrorKind::WouldBlock`] if the server
    /// shed the request as [`Response::Overloaded`], and
    /// [`io::ErrorKind::TimedOut`] for [`Response::DeadlineExceeded`] —
    /// for both sheds the connection is still usable; retry with backoff
    /// ([`Client::predict_with_backoff`]).
    pub fn predict_on(&mut self, model_id: u16, row: &BitVec) -> io::Result<usize> {
        let id = self.send_to(model_id, row)?;
        let (got, response) = self.recv()?;
        if got != id {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("response for request {got}, expected {id}"),
            ));
        }
        match response {
            Response::Class(class) => Ok(class),
            Response::UnknownModel => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("server rejected request {id}: unknown model {model_id}"),
            )),
            Response::BadRequest => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("server rejected request {id} as malformed"),
            )),
            Response::Overloaded => Err(io::Error::new(
                io::ErrorKind::WouldBlock,
                format!("server shed request {id}: every queue shard is full"),
            )),
            Response::DeadlineExceeded => Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!("server shed request {id}: deadline exceeded while queued"),
            )),
        }
    }

    /// [`Client::predict_on`] with retry-with-jittered-backoff on
    /// transient sheds ([`Response::Overloaded`] /
    /// [`Response::DeadlineExceeded`]): on a shed, sleeps
    /// [`RetryPolicy::backoff`] and resends, up to
    /// [`RetryPolicy::max_retries`] times. Returns the prediction plus
    /// how many retries it took, so load reports can account retries
    /// separately from failures.
    ///
    /// # Errors
    ///
    /// As [`Client::predict_on`]; a shed that survives every retry
    /// surfaces as the final attempt's error
    /// ([`io::ErrorKind::WouldBlock`] / [`io::ErrorKind::TimedOut`]).
    pub fn predict_with_backoff(
        &mut self,
        model_id: u16,
        row: &BitVec,
        policy: &RetryPolicy,
    ) -> io::Result<(usize, u32)> {
        let mut attempt = 0u32;
        loop {
            match self.predict_on(model_id, row) {
                Ok(class) => return Ok((class, attempt)),
                Err(e)
                    if attempt < policy.max_retries
                        && matches!(
                            e.kind(),
                            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                        ) =>
                {
                    std::thread::sleep(policy.backoff(attempt, self.sender.next_id));
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Splits the client into independently owned send and receive
    /// halves, so one thread can pace requests onto the wire while
    /// another drains responses — the shape an *open-loop* load generator
    /// needs (a closed-loop caller can just keep using [`Client::predict`]).
    pub fn into_split(self) -> (ClientSender, ClientReceiver) {
        (self.sender, self.receiver)
    }
}

/// The sending half of a [`Client`]; see [`Client::into_split`].
pub struct ClientSender {
    writer: TcpStream,
    models: Vec<ModelInfo>,
    next_id: u64,
}

impl ClientSender {
    /// Every model the server advertised, in hello order.
    pub fn models(&self) -> &[ModelInfo] {
        &self.models
    }

    /// Sends one request to model 0; see [`Client::send`].
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    ///
    /// # Panics
    ///
    /// Panics if `row.len()` differs from model 0's feature count.
    pub fn send(&mut self, row: &BitVec) -> io::Result<u64> {
        let model_id = self.models[0].id;
        self.send_to(model_id, row)
    }

    /// Sends one request to `model_id`; see [`Client::send_to`].
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    ///
    /// # Panics
    ///
    /// Panics if the server never advertised `model_id` or the row width
    /// does not match it.
    pub fn send_to(&mut self, model_id: u16, row: &BitVec) -> io::Result<u64> {
        let model = self
            .models
            .iter()
            .find(|m| m.id == model_id)
            .unwrap_or_else(|| panic!("server never advertised model {model_id}"));
        assert_eq!(
            row.len(),
            model.num_features,
            "row has {} features, model {} expects {}",
            row.len(),
            model_id,
            model.num_features
        );
        self.send_raw(model_id, row)
    }

    /// Sends a request without validating the model id or row width
    /// against the hello — deliberately, so tests and diagnostics can
    /// exercise the server's typed rejection path.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn send_raw(&mut self, model_id: u16, row: &BitVec) -> io::Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        protocol::write_frame(
            &mut self.writer,
            &protocol::encode_request(model_id, id, row),
        )?;
        Ok(id)
    }
}

/// The receiving half of a [`Client`]; see [`Client::into_split`].
pub struct ClientReceiver {
    reader: BufReader<TcpStream>,
}

impl ClientReceiver {
    /// Receives the next response as `(request_id, response)`.
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::UnexpectedEof`] when the server closes the
    /// connection (e.g. after an unparseable frame), or
    /// [`io::ErrorKind::InvalidData`] on a malformed response or unknown
    /// status code.
    pub fn recv(&mut self) -> io::Result<(u64, Response)> {
        let payload = protocol::read_frame(&mut self.reader, protocol::RESPONSE_LEN)?
            .ok_or_else(|| io::Error::from(io::ErrorKind::UnexpectedEof))?;
        let (id, status, class) = protocol::decode_response(&payload).ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, "malformed response frame")
        })?;
        let response = match status {
            STATUS_OK => Response::Class(class as usize),
            STATUS_UNKNOWN_MODEL => Response::UnknownModel,
            STATUS_BAD_REQUEST => Response::BadRequest,
            STATUS_OVERLOADED => Response::Overloaded,
            STATUS_DEADLINE_EXCEEDED => Response::DeadlineExceeded,
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unknown response status {other}"),
                ))
            }
        };
        Ok((id, response))
    }
}
