//! A small blocking client for the serving protocol, used by the load
//! generator and the integration tests.

use std::io::{self, BufReader};
use std::net::{TcpStream, ToSocketAddrs};

use poetbin_bits::BitVec;

use crate::protocol::{
    self, ModelInfo, STATUS_BAD_REQUEST, STATUS_OK, STATUS_OVERLOADED, STATUS_UNKNOWN_MODEL,
};

/// The server's answer to one request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Response {
    /// The model's prediction.
    Class(usize),
    /// The request named a model id the server does not serve.
    UnknownModel,
    /// The request was malformed for its model (wrong row width, or too
    /// short to parse).
    BadRequest,
    /// The server shed the request because every bounded pending queue
    /// was full; retry with backoff. The connection is still good.
    Overloaded,
}

/// A connected protocol client.
///
/// The server may serve several models; the hello advertises all of them
/// (see [`Client::models`]) and every request names its target. The
/// un-suffixed methods ([`Client::send`], [`Client::predict`],
/// [`Client::num_features`], …) address model 0 — the common
/// single-model case — while the `_to`/`_on` variants take an explicit
/// model id.
///
/// Requests may be pipelined: any number of [`Client::send`] calls may be
/// outstanding before the matching [`Client::recv`] calls, and the server
/// is free to answer out of order (it answers a whole batch at once).
/// [`Client::predict`] is the simple closed-loop form; an open-loop
/// caller splits the client into independently owned halves with
/// [`Client::into_split`].
pub struct Client {
    sender: ClientSender,
    receiver: ClientReceiver,
}

impl Client {
    /// Connects and consumes the server hello.
    ///
    /// # Errors
    ///
    /// Propagates connection failures; [`io::ErrorKind::InvalidData`] when
    /// the peer is not a POETSRV2 server or advertises no models.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        let mut reader = BufReader::new(stream);
        let models = protocol::read_hello(&mut reader)?;
        if models.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "server advertises no models",
            ));
        }
        Ok(Client {
            sender: ClientSender {
                writer,
                models,
                next_id: 0,
            },
            receiver: ClientReceiver { reader },
        })
    }

    /// Every model the server advertised, in hello order.
    pub fn models(&self) -> &[ModelInfo] {
        &self.sender.models
    }

    /// The advertised model with the given name, if any.
    pub fn model(&self, name: &str) -> Option<&ModelInfo> {
        self.sender.models.iter().find(|m| m.name == name)
    }

    /// Row width model 0 expects.
    pub fn num_features(&self) -> usize {
        self.sender.models[0].num_features
    }

    /// Number of classes model 0's predictions range over.
    pub fn classes(&self) -> usize {
        self.sender.models[0].classes
    }

    /// Sends one request to model 0, returning the id that will come back
    /// with its response.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    ///
    /// # Panics
    ///
    /// Panics if `row.len()` differs from model 0's feature count.
    pub fn send(&mut self, row: &BitVec) -> io::Result<u64> {
        self.sender.send(row)
    }

    /// Sends one request to `model_id`, returning the id that will come
    /// back with its response.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    ///
    /// # Panics
    ///
    /// Panics if the server never advertised `model_id`, or if
    /// `row.len()` differs from that model's feature count. To probe the
    /// server's own rejection path, use
    /// [`ClientSender::send_raw`](ClientSender::send_raw).
    pub fn send_to(&mut self, model_id: u16, row: &BitVec) -> io::Result<u64> {
        self.sender.send_to(model_id, row)
    }

    /// Receives the next response as `(request_id, response)`.
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::UnexpectedEof`] when the server closes the
    /// connection (e.g. after an unparseable frame), or
    /// [`io::ErrorKind::InvalidData`] on a malformed response.
    pub fn recv(&mut self) -> io::Result<(u64, Response)> {
        self.receiver.recv()
    }

    /// Sends one row to model 0 and blocks for its prediction.
    ///
    /// # Errors
    ///
    /// As for [`Client::predict_on`].
    pub fn predict(&mut self, row: &BitVec) -> io::Result<usize> {
        self.predict_on(0, row)
    }

    /// Sends one row to `model_id` and blocks for its prediction.
    ///
    /// # Errors
    ///
    /// As for [`Client::send_to`] / [`Client::recv`], plus
    /// [`io::ErrorKind::InvalidData`] if the server rejects the request
    /// or the response carries a different request id (only possible when
    /// mixed with pipelined [`Client::send`] calls whose responses were
    /// never collected), and [`io::ErrorKind::WouldBlock`] if the server
    /// shed the request as [`Response::Overloaded`] — the connection is
    /// still usable; retry with backoff.
    pub fn predict_on(&mut self, model_id: u16, row: &BitVec) -> io::Result<usize> {
        let id = self.send_to(model_id, row)?;
        let (got, response) = self.recv()?;
        if got != id {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("response for request {got}, expected {id}"),
            ));
        }
        match response {
            Response::Class(class) => Ok(class),
            Response::UnknownModel => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("server rejected request {id}: unknown model {model_id}"),
            )),
            Response::BadRequest => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("server rejected request {id} as malformed"),
            )),
            Response::Overloaded => Err(io::Error::new(
                io::ErrorKind::WouldBlock,
                format!("server shed request {id}: every queue shard is full"),
            )),
        }
    }

    /// Splits the client into independently owned send and receive
    /// halves, so one thread can pace requests onto the wire while
    /// another drains responses — the shape an *open-loop* load generator
    /// needs (a closed-loop caller can just keep using [`Client::predict`]).
    pub fn into_split(self) -> (ClientSender, ClientReceiver) {
        (self.sender, self.receiver)
    }
}

/// The sending half of a [`Client`]; see [`Client::into_split`].
pub struct ClientSender {
    writer: TcpStream,
    models: Vec<ModelInfo>,
    next_id: u64,
}

impl ClientSender {
    /// Every model the server advertised, in hello order.
    pub fn models(&self) -> &[ModelInfo] {
        &self.models
    }

    /// Sends one request to model 0; see [`Client::send`].
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    ///
    /// # Panics
    ///
    /// Panics if `row.len()` differs from model 0's feature count.
    pub fn send(&mut self, row: &BitVec) -> io::Result<u64> {
        let model_id = self.models[0].id;
        self.send_to(model_id, row)
    }

    /// Sends one request to `model_id`; see [`Client::send_to`].
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    ///
    /// # Panics
    ///
    /// Panics if the server never advertised `model_id` or the row width
    /// does not match it.
    pub fn send_to(&mut self, model_id: u16, row: &BitVec) -> io::Result<u64> {
        let model = self
            .models
            .iter()
            .find(|m| m.id == model_id)
            .unwrap_or_else(|| panic!("server never advertised model {model_id}"));
        assert_eq!(
            row.len(),
            model.num_features,
            "row has {} features, model {} expects {}",
            row.len(),
            model_id,
            model.num_features
        );
        self.send_raw(model_id, row)
    }

    /// Sends a request without validating the model id or row width
    /// against the hello — deliberately, so tests and diagnostics can
    /// exercise the server's typed rejection path.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn send_raw(&mut self, model_id: u16, row: &BitVec) -> io::Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        protocol::write_frame(
            &mut self.writer,
            &protocol::encode_request(model_id, id, row),
        )?;
        Ok(id)
    }
}

/// The receiving half of a [`Client`]; see [`Client::into_split`].
pub struct ClientReceiver {
    reader: BufReader<TcpStream>,
}

impl ClientReceiver {
    /// Receives the next response as `(request_id, response)`.
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::UnexpectedEof`] when the server closes the
    /// connection (e.g. after an unparseable frame), or
    /// [`io::ErrorKind::InvalidData`] on a malformed response or unknown
    /// status code.
    pub fn recv(&mut self) -> io::Result<(u64, Response)> {
        let payload = protocol::read_frame(&mut self.reader, protocol::RESPONSE_LEN)?
            .ok_or_else(|| io::Error::from(io::ErrorKind::UnexpectedEof))?;
        let (id, status, class) = protocol::decode_response(&payload).ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, "malformed response frame")
        })?;
        let response = match status {
            STATUS_OK => Response::Class(class as usize),
            STATUS_UNKNOWN_MODEL => Response::UnknownModel,
            STATUS_BAD_REQUEST => Response::BadRequest,
            STATUS_OVERLOADED => Response::Overloaded,
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unknown response status {other}"),
                ))
            }
        };
        Ok((id, response))
    }
}
