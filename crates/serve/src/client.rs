//! A small blocking client for the serving protocol, used by the load
//! generator and the integration tests.

use std::io::{self, BufReader};
use std::net::{TcpStream, ToSocketAddrs};

use poetbin_bits::BitVec;

use crate::protocol;

/// A connected protocol client.
///
/// Requests may be pipelined: any number of [`Client::send`] calls may be
/// outstanding before the matching [`Client::recv`] calls, and the server
/// is free to answer out of order (it answers a whole batch at once).
/// [`Client::predict`] is the simple closed-loop form; an open-loop
/// caller splits the client into independently owned halves with
/// [`Client::into_split`].
pub struct Client {
    sender: ClientSender,
    receiver: ClientReceiver,
    classes: usize,
}

impl Client {
    /// Connects and consumes the server hello.
    ///
    /// # Errors
    ///
    /// Propagates connection failures; [`io::ErrorKind::InvalidData`] when
    /// the peer is not a POETSRV1 server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        let mut reader = BufReader::new(stream);
        let (num_features, classes) = protocol::read_hello(&mut reader)?;
        Ok(Client {
            sender: ClientSender {
                writer,
                num_features: num_features as usize,
                next_id: 0,
            },
            receiver: ClientReceiver { reader },
            classes: classes as usize,
        })
    }

    /// Row width the server's model expects.
    pub fn num_features(&self) -> usize {
        self.sender.num_features
    }

    /// Number of classes predictions range over.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Sends one request, returning the id that will come back with its
    /// response.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    ///
    /// # Panics
    ///
    /// Panics if `row.len()` differs from the server's feature count.
    pub fn send(&mut self, row: &BitVec) -> io::Result<u64> {
        self.sender.send(row)
    }

    /// Receives the next response as `(request_id, class)`.
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::UnexpectedEof`] when the server closes the
    /// connection (e.g. after a protocol violation), or
    /// [`io::ErrorKind::InvalidData`] on a malformed response.
    pub fn recv(&mut self) -> io::Result<(u64, usize)> {
        self.receiver.recv()
    }

    /// Sends one row and blocks for its prediction.
    ///
    /// # Errors
    ///
    /// As for [`Client::send`] / [`Client::recv`], plus
    /// [`io::ErrorKind::InvalidData`] if the response carries a different
    /// request id (only possible when mixed with pipelined [`Client::send`]
    /// calls whose responses were never collected).
    pub fn predict(&mut self, row: &BitVec) -> io::Result<usize> {
        let id = self.send(row)?;
        let (got, class) = self.recv()?;
        if got != id {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("response for request {got}, expected {id}"),
            ));
        }
        Ok(class)
    }

    /// Splits the client into independently owned send and receive
    /// halves, so one thread can pace requests onto the wire while
    /// another drains responses — the shape an *open-loop* load generator
    /// needs (a closed-loop caller can just keep using [`Client::predict`]).
    pub fn into_split(self) -> (ClientSender, ClientReceiver) {
        (self.sender, self.receiver)
    }
}

/// The sending half of a [`Client`]; see [`Client::into_split`].
pub struct ClientSender {
    writer: TcpStream,
    num_features: usize,
    next_id: u64,
}

impl ClientSender {
    /// Sends one request, returning the id that will come back with its
    /// response.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    ///
    /// # Panics
    ///
    /// Panics if `row.len()` differs from the server's feature count.
    pub fn send(&mut self, row: &BitVec) -> io::Result<u64> {
        assert_eq!(
            row.len(),
            self.num_features,
            "row has {} features, server expects {}",
            row.len(),
            self.num_features
        );
        let id = self.next_id;
        self.next_id += 1;
        protocol::write_frame(&mut self.writer, &protocol::encode_request(id, row))?;
        Ok(id)
    }
}

/// The receiving half of a [`Client`]; see [`Client::into_split`].
pub struct ClientReceiver {
    reader: BufReader<TcpStream>,
}

impl ClientReceiver {
    /// Receives the next response as `(request_id, class)`.
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::UnexpectedEof`] when the server closes the
    /// connection (e.g. after a protocol violation), or
    /// [`io::ErrorKind::InvalidData`] on a malformed response.
    pub fn recv(&mut self) -> io::Result<(u64, usize)> {
        let payload = protocol::read_frame(&mut self.reader, 10)?
            .ok_or_else(|| io::Error::from(io::ErrorKind::UnexpectedEof))?;
        let (id, class) = protocol::decode_response(&payload).ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, "malformed response frame")
        })?;
        Ok((id, class as usize))
    }
}
