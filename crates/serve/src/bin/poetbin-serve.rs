//! Standalone server binary: load a `POETBIN1` model, serve forever.
//!
//! ```text
//! poetbin-serve MODEL.poetbin [ADDR] [--workers N] [--linger-us U] [--max-batch B] [--features F]
//! ```
//!
//! `ADDR` defaults to `127.0.0.1:9009`. The process serves until killed.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use poetbin_serve::{load_engine, ServeConfig, Server};

fn usage() -> ExitCode {
    eprintln!(
        "usage: poetbin-serve MODEL.poetbin [ADDR] [--workers N] [--linger-us U] \
         [--max-batch B] [--features F]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut model = None;
    let mut addr = "127.0.0.1:9009".to_string();
    let mut addr_given = false;
    let mut config = ServeConfig::default();
    let mut features = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut flag_value = |name: &str| -> Option<usize> {
            match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => Some(v),
                None => {
                    eprintln!("{name} needs a numeric value");
                    None
                }
            }
        };
        match arg.as_str() {
            "--workers" => match flag_value("--workers") {
                Some(v) if v > 0 => config.workers = v,
                _ => return usage(),
            },
            "--linger-us" => match flag_value("--linger-us") {
                Some(v) => config.linger = Duration::from_micros(v as u64),
                None => return usage(),
            },
            "--max-batch" => match flag_value("--max-batch") {
                Some(v) if (1..=512).contains(&v) => config.max_batch = v,
                _ => return usage(),
            },
            "--features" => match flag_value("--features") {
                Some(v) => features = Some(v),
                None => return usage(),
            },
            other if other.starts_with("--") => {
                eprintln!("unknown flag {other}");
                return usage();
            }
            other if model.is_none() => model = Some(other.to_string()),
            other if !addr_given => {
                addr = other.to_string();
                addr_given = true;
            }
            other => {
                eprintln!("unexpected argument {other}");
                return usage();
            }
        }
    }
    let Some(model) = model else {
        return usage();
    };

    let engine = match load_engine(&model, features) {
        Ok(engine) => engine,
        Err(e) => {
            eprintln!("poetbin-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "poetbin-serve: model {} ({} features, {} classes, {} tape ops)",
        model,
        engine.num_features(),
        engine.classes(),
        engine.engine().plan().tape_len()
    );
    let server = match Server::start(Arc::new(engine), addr.as_str(), config.clone()) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("poetbin-serve: bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "poetbin-serve: listening on {} ({} workers, linger {:?}, max batch {})",
        server.local_addr(),
        config.workers,
        config.linger,
        config.max_batch
    );
    // Serve until killed: park this thread forever.
    loop {
        std::thread::park();
    }
}
