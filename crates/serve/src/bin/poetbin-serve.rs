//! Standalone server binary: load one or more persisted models (either
//! `POETBIN` format), serve them all forever.
//!
//! ```text
//! poetbin-serve MODEL... [--addr ADDR] [--workers N] [--linger-us U] \
//!               [--max-batch B] [--features F] [--queue-cap Q] \
//!               [--stats-addr ADDR] [--backend interp|jit|auto] \
//!               [--deadline-us U] [--idle-timeout-ms MS] [--fault-plan SEED]
//! ```
//!
//! Each `MODEL` path is registered under its file stem (`deep.poetbin2`
//! serves as model `deep`), with wire ids assigned in argument order —
//! the first model is id 0, the one plain clients address by default.
//! `--addr` defaults to `127.0.0.1:9009`; a bare positional address after
//! the first model is still accepted for compatibility. `--features`
//! applies to every model (each model's own minimum width is used when
//! absent). `--queue-cap` bounds each worker's pending queue (full ⇒
//! requests are shed with `STATUS_OVERLOADED`); `--stats-addr` pins the
//! plain-text stats/health listener (an ephemeral port on the data
//! address otherwise — the chosen port is printed at startup).
//! `--backend` selects the tape execution backend for every model:
//! `auto` (default) runs the in-process JIT where available and falls
//! back to the interpreter, `jit`/`interp` pin one (a pinned `jit` still
//! falls back on hosts without JIT support; each model's resolved
//! backend is printed at load and reported in the stats listener).
//!
//! Robustness knobs: `--deadline-us` sheds requests that wait longer
//! than the budget with `STATUS_DEADLINE_EXCEEDED`; `--idle-timeout-ms`
//! reaps connections with nothing in flight and no complete frame inside
//! the window (slow-loris defence). `--fault-plan SEED` (or the
//! `POETBIN_FAULT_SEED` environment variable, flag wins) arms the
//! deterministic fault injector with the schedule derived from SEED —
//! short reads/writes, spurious `EAGAIN`/`EINTR`, delayed poller
//! wakeups, injected worker panics — for chaos drills against a real
//! process. On `SIGINT`/`SIGTERM` the server drains gracefully: it stops
//! accepting, flushes in-flight work, and exits 0 if the drain finishes
//! inside its watchdog (exit 1 if the watchdog expires).

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use poetbin_engine::Backend;
use poetbin_serve::{load_engine_with, FaultPlan, ModelRegistry, ServeConfig, Server};

/// Grace budget for the signal-triggered drain before the process gives
/// up and reports failure.
const DRAIN_GRACE: Duration = Duration::from_secs(10);

fn usage() -> ExitCode {
    eprintln!(
        "usage: poetbin-serve MODEL... [--addr ADDR] [--workers N] [--linger-us U] \
         [--max-batch B] [--features F] [--queue-cap Q] [--stats-addr ADDR] \
         [--backend interp|jit|auto] [--deadline-us U] [--idle-timeout-ms MS] \
         [--fault-plan SEED]"
    );
    ExitCode::from(2)
}

/// The registry name for a model path: its file stem.
fn model_name(path: &str) -> String {
    std::path::Path::new(path)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.to_string())
}

/// A positional that looks like `host:port` rather than a model path.
fn looks_like_addr(arg: &str) -> bool {
    use std::net::ToSocketAddrs;
    !std::path::Path::new(arg).exists() && arg.to_socket_addrs().is_ok()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut models: Vec<String> = Vec::new();
    let mut addr = "127.0.0.1:9009".to_string();
    let mut addr_given = false;
    let mut config = ServeConfig::default();
    let mut features = None;
    let mut backend = Backend::default();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut flag_value = |name: &str| -> Option<usize> {
            match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => Some(v),
                None => {
                    eprintln!("{name} needs a numeric value");
                    None
                }
            }
        };
        match arg.as_str() {
            "--addr" => match it.next() {
                Some(v) => {
                    addr = v.clone();
                    addr_given = true;
                }
                None => {
                    eprintln!("--addr needs a value");
                    return usage();
                }
            },
            "--workers" => match flag_value("--workers") {
                Some(v) if v > 0 => config.workers = v,
                _ => return usage(),
            },
            "--linger-us" => match flag_value("--linger-us") {
                Some(v) => config.linger = Duration::from_micros(v as u64),
                None => return usage(),
            },
            "--max-batch" => match flag_value("--max-batch") {
                Some(v) if (1..=512).contains(&v) => config.max_batch = v,
                _ => return usage(),
            },
            "--features" => match flag_value("--features") {
                Some(v) => features = Some(v),
                None => return usage(),
            },
            "--queue-cap" => match flag_value("--queue-cap") {
                Some(v) if v > 0 => config.queue_cap = v,
                _ => return usage(),
            },
            "--stats-addr" => match it.next().map(|v| v.parse()) {
                Some(Ok(v)) => config.stats_addr = Some(v),
                _ => {
                    eprintln!("--stats-addr needs an IP:PORT value");
                    return usage();
                }
            },
            "--backend" => match it.next().map(|v| v.parse()) {
                Some(Ok(v)) => backend = v,
                _ => {
                    eprintln!("--backend must be one of interp, jit, auto");
                    return usage();
                }
            },
            "--deadline-us" => match flag_value("--deadline-us") {
                Some(v) if v > 0 => config.deadline = Some(Duration::from_micros(v as u64)),
                _ => return usage(),
            },
            "--idle-timeout-ms" => match flag_value("--idle-timeout-ms") {
                Some(v) if v > 0 => config.idle_timeout = Some(Duration::from_millis(v as u64)),
                _ => return usage(),
            },
            "--fault-plan" => match it.next().and_then(|v| v.parse().ok()) {
                Some(seed) => config.fault = Some(FaultPlan::from_seed(seed)),
                None => {
                    eprintln!("--fault-plan needs a numeric seed");
                    return usage();
                }
            },
            other if other.starts_with("--") => {
                eprintln!("unknown flag {other}");
                return usage();
            }
            other if !models.is_empty() && !addr_given && looks_like_addr(other) => {
                addr = other.to_string();
                addr_given = true;
            }
            other => models.push(other.to_string()),
        }
    }
    if models.is_empty() {
        return usage();
    }
    // Environment fallback for chaos drills on an unmodified command
    // line; an explicit --fault-plan wins.
    if config.fault.is_none() {
        if let Ok(value) = std::env::var("POETBIN_FAULT_SEED") {
            match value.parse() {
                Ok(seed) => config.fault = Some(FaultPlan::from_seed(seed)),
                Err(_) => {
                    eprintln!("POETBIN_FAULT_SEED must be a numeric seed, got {value:?}");
                    return usage();
                }
            }
        }
    }
    if let Some(plan) = &config.fault {
        eprintln!(
            "poetbin-serve: FAULT INJECTION ARMED (seed {}) — not for production",
            plan.seed
        );
    }

    let mut registry = ModelRegistry::new();
    for path in &models {
        let engine = match load_engine_with(path, features, backend) {
            Ok(engine) => engine,
            Err(e) => {
                eprintln!("poetbin-serve: {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let name = model_name(path);
        if registry.id_of(&name).is_some() {
            eprintln!("poetbin-serve: duplicate model name {name:?} (from {path})");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "poetbin-serve: model {} = {} ({} features, {} classes, {} tape ops, {} backend)",
            registry.len(),
            path,
            engine.num_features(),
            engine.classes(),
            engine.engine().plan().tape_len(),
            engine.backend_name()
        );
        registry.register(name, Arc::new(engine));
    }

    let server = match Server::start(Arc::new(registry), addr.as_str(), config.clone()) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("poetbin-serve: bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "poetbin-serve: listening on {} ({} models, {} workers, linger {:?}, max batch {}, \
         queue cap {}/worker), stats on {}",
        server.local_addr(),
        server.registry().len(),
        config.workers,
        config.linger,
        config.max_batch,
        config.queue_cap,
        server.stats_addr()
    );
    // Serve until SIGINT/SIGTERM, then drain gracefully: stop accepting,
    // flush the in-flight work, and exit under a bounded watchdog.
    if let Err(e) = epoll::install_shutdown_flag() {
        eprintln!("poetbin-serve: cannot install signal handlers: {e}");
        return ExitCode::FAILURE;
    }
    while !epoll::shutdown_requested() {
        std::thread::sleep(Duration::from_millis(50));
    }
    let stats = server.stats_handle();
    eprintln!("poetbin-serve: shutdown requested, draining (grace {DRAIN_GRACE:?})");
    let drained = server.shutdown_within(DRAIN_GRACE);
    eprintln!(
        "poetbin-serve: drained — received {} served {} overloaded {} deadline_expired {} \
         rejected {} protocol_errors {}",
        stats.received(),
        stats.served(),
        stats.overloaded(),
        stats.deadline_expired(),
        stats.rejected(),
        stats.protocol_errors()
    );
    if drained {
        ExitCode::SUCCESS
    } else {
        eprintln!("poetbin-serve: drain watchdog expired; exiting with in-flight work lost");
        ExitCode::FAILURE
    }
}
