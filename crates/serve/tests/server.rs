//! End-to-end server tests: protocol handshake, single-flight and
//! pipelined prediction, multi-client concurrency, multi-model routing,
//! live engine hot-swap, typed rejection of malformed requests and the
//! persist → engine loading path.

mod common;

use std::collections::HashMap;
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use common::{class_of, offline, start_test_server, test_classifier, test_engine, test_row};
use poetbin_bits::BitVec;
use poetbin_core::persist::{save_classifier_to, ModelFormat};
use poetbin_serve::{load_engine, Client, LoadError, ModelRegistry, Response, ServeConfig, Server};

#[test]
fn hello_reports_model_table_and_predictions_match_offline_path() {
    let f = 24;
    let (server, engine) = start_test_server(11, f, ServeConfig::default());
    let mut client = Client::connect(server.local_addr()).expect("connect");
    assert_eq!(client.num_features(), f);
    assert_eq!(client.classes(), 4);
    assert_eq!(client.models().len(), 1);
    let info = client.model("m0").expect("advertised");
    assert_eq!((info.id, info.num_features, info.classes), (0, f, 4));

    let rows: Vec<BitVec> = (0..100).map(|i| test_row(f, 0, i)).collect();
    let expected = offline(&engine, &rows);
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(
            client.predict(row).expect("predict"),
            expected[i],
            "row {i} disagrees with the offline batch path"
        );
    }
    drop(client);
    server.shutdown();
}

#[test]
fn pipelined_requests_come_back_complete_and_correctly_tagged() {
    let f = 20;
    let (server, engine) = start_test_server(12, f, ServeConfig::default());
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let rows: Vec<BitVec> = (0..300).map(|i| test_row(f, 7, i)).collect();
    let expected = offline(&engine, &rows);
    let mut want: HashMap<u64, usize> = HashMap::new();
    for (i, row) in rows.iter().enumerate() {
        let id = client.send(row).expect("send");
        want.insert(id, expected[i]);
    }
    for _ in 0..rows.len() {
        let (id, response) = client.recv().expect("recv");
        let expect = want.remove(&id).expect("unknown or duplicate response id");
        assert_eq!(class_of(response), expect, "request {id} cross-wired");
    }
    assert!(want.is_empty(), "{} responses dropped", want.len());
    // Pipelined single-connection traffic must have been coalesced into
    // multi-lane words, not served one lane at a time.
    assert_eq!(server.stats().served(), 300);
    assert!(
        server.stats().mean_batch() > 1.5,
        "mean batch {:.2} — micro-batching never engaged",
        server.stats().mean_batch()
    );
    server.shutdown();
}

/// The headline concurrency property: N client threads hammer the server
/// with interleaved pipelined requests; every response must match the
/// offline batch-path prediction for its request id, with nothing dropped
/// and nothing cross-wired between connections.
#[test]
fn concurrent_clients_never_drop_or_cross_wire() {
    let f = 32;
    let threads = 8;
    let per_thread = 400;
    let (server, engine) = start_test_server(13, f, ServeConfig::default());
    let addr = server.local_addr();

    std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for t in 0..threads {
            let engine = Arc::clone(&engine);
            joins.push(scope.spawn(move || {
                let rows: Vec<BitVec> = (0..per_thread).map(|i| test_row(f, t, i)).collect();
                let expected = offline(&engine, &rows);
                let mut client = Client::connect(addr).expect("connect");
                // Interleave: bursts of pipelined sends, then collect.
                let mut want: HashMap<u64, usize> = HashMap::new();
                for (chunk_start, chunk) in rows.chunks(23).enumerate() {
                    for (k, row) in chunk.iter().enumerate() {
                        let id = client.send(row).expect("send");
                        want.insert(id, expected[chunk_start * 23 + k]);
                    }
                    for _ in 0..chunk.len() {
                        let (id, response) = client.recv().expect("recv");
                        let expect = want
                            .remove(&id)
                            .expect("response id never requested on this connection");
                        assert_eq!(
                            class_of(response),
                            expect,
                            "thread {t}: request {id} wrong class"
                        );
                    }
                }
                assert!(want.is_empty(), "thread {t}: {} dropped", want.len());
            }));
        }
        for j in joins {
            j.join().expect("client thread panicked");
        }
    });

    let stats = server.stats();
    assert_eq!(stats.served(), (threads * per_thread) as u64);
    assert_eq!(stats.received(), stats.served());
    assert_eq!(stats.protocol_errors(), 0);
    assert_eq!(stats.rejected(), 0);
    assert_eq!(stats.connections(), threads as u64);
    server.shutdown();
}

#[test]
fn zero_linger_and_batch_of_one_still_serve_correctly() {
    let f = 16;
    let config = ServeConfig {
        workers: 1,
        linger: Duration::ZERO,
        max_batch: 1,
        ..ServeConfig::default()
    };
    let (server, engine) = start_test_server(14, f, config);
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let rows: Vec<BitVec> = (0..50).map(|i| test_row(f, 3, i)).collect();
    let expected = offline(&engine, &rows);
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(
            client.predict(row).expect("predict"),
            expected[i],
            "row {i}"
        );
    }
    // max_batch = 1 forces exactly one word per request.
    assert_eq!(server.stats().batches(), 50);
    server.shutdown();
}

/// Two models behind one server: requests interleaved over one connection
/// route to the right engine, and the per-model counters split accordingly.
#[test]
fn two_models_route_correctly_over_one_connection() {
    let (fa, fb) = (24usize, 40usize);
    let engine_a = test_engine(31, fa);
    let engine_b = test_engine(32, fb);
    let mut registry = ModelRegistry::new();
    let id_a = registry.register("alpha", Arc::clone(&engine_a));
    let id_b = registry.register("beta", Arc::clone(&engine_b));
    let registry = Arc::new(registry);
    let server =
        Server::start(Arc::clone(&registry), "127.0.0.1:0", ServeConfig::default()).expect("bind");

    let mut client = Client::connect(server.local_addr()).expect("connect");
    assert_eq!(client.models().len(), 2);
    assert_eq!(client.model("alpha").unwrap().id, id_a);
    assert_eq!(client.model("beta").unwrap().num_features, fb);

    let n = 150;
    let rows_a: Vec<BitVec> = (0..n).map(|i| test_row(fa, 1, i)).collect();
    let rows_b: Vec<BitVec> = (0..n).map(|i| test_row(fb, 2, i)).collect();
    let expect_a = offline(&engine_a, &rows_a);
    let expect_b = offline(&engine_b, &rows_b);

    // Interleave pipelined sends to both models on the same connection.
    let mut want: HashMap<u64, usize> = HashMap::new();
    for i in 0..n {
        let id = client.send_to(id_a, &rows_a[i]).expect("send a");
        want.insert(id, expect_a[i]);
        let id = client.send_to(id_b, &rows_b[i]).expect("send b");
        want.insert(id, expect_b[i]);
    }
    for _ in 0..2 * n {
        let (id, response) = client.recv().expect("recv");
        let expect = want.remove(&id).expect("unknown or duplicate response id");
        assert_eq!(class_of(response), expect, "request {id} cross-wired");
    }
    assert!(want.is_empty());

    let (sa, sb) = (registry.stats(id_a).unwrap(), registry.stats(id_b).unwrap());
    assert_eq!(sa.served(), n as u64);
    assert_eq!(sb.served(), n as u64);
    assert_eq!(sa.received(), n as u64);
    assert_eq!(
        server.stats().served(),
        sa.served() + sb.served(),
        "global counter must be the sum of the per-model ones"
    );
    server.shutdown();
}

/// The hot-swap property the registry exists for: while pipelined clients
/// hammer two models, a third thread swaps one model's engine mid-flight.
/// Every response must be a well-formed prediction from either the old or
/// the new engine (never garbage, never dropped), responses after the
/// swap returns must all come from the new engine, and the untouched
/// model must be completely unaffected.
#[test]
fn hot_swap_under_pipelined_load_never_drops_or_corrupts() {
    let f = 28;
    let engine_stable = test_engine(41, f);
    let engine_old = test_engine(42, f);
    let engine_new = test_engine(43, f);
    let mut registry = ModelRegistry::new();
    let id_stable = registry.register("stable", Arc::clone(&engine_stable));
    let id_swapped = registry.register("swapped", Arc::clone(&engine_old));
    let registry = Arc::new(registry);
    let server =
        Server::start(Arc::clone(&registry), "127.0.0.1:0", ServeConfig::default()).expect("bind");
    let addr = server.local_addr();

    let threads = 4;
    let per_thread = 600;
    std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for t in 0..threads {
            let engine_stable = Arc::clone(&engine_stable);
            let engine_old = Arc::clone(&engine_old);
            let engine_new = Arc::clone(&engine_new);
            joins.push(scope.spawn(move || {
                let rows: Vec<BitVec> = (0..per_thread).map(|i| test_row(f, t, i)).collect();
                let from_stable = offline(&engine_stable, &rows);
                let from_old = offline(&engine_old, &rows);
                let from_new = offline(&engine_new, &rows);
                let mut client = Client::connect(addr).expect("connect");
                // (request id -> row index, aimed at swapped model?)
                let mut want: HashMap<u64, (usize, bool)> = HashMap::new();
                for (chunk_start, chunk) in rows.chunks(31).enumerate() {
                    for (k, row) in chunk.iter().enumerate() {
                        let i = chunk_start * 31 + k;
                        let swapped = i % 2 == 1;
                        let model = if swapped { id_swapped } else { id_stable };
                        let id = client.send_to(model, row).expect("send");
                        want.insert(id, (i, swapped));
                    }
                    for _ in 0..chunk.len() {
                        let (id, response) = client.recv().expect("recv");
                        let (i, swapped) =
                            want.remove(&id).expect("unknown or duplicate response id");
                        let got = class_of(response);
                        if swapped {
                            assert!(
                                got == from_old[i] || got == from_new[i],
                                "thread {t} row {i}: class {got} matches neither the \
                                 old ({}) nor the new ({}) engine",
                                from_old[i],
                                from_new[i]
                            );
                        } else {
                            assert_eq!(
                                got, from_stable[i],
                                "thread {t} row {i}: the un-swapped model was disturbed"
                            );
                        }
                    }
                }
                assert!(want.is_empty(), "thread {t}: {} dropped", want.len());
            }));
        }

        // Let traffic build, then swap mid-flight.
        std::thread::sleep(Duration::from_millis(5));
        registry
            .swap(id_swapped, Arc::clone(&engine_new))
            .expect("same wire shape");

        for j in joins {
            j.join().expect("client thread panicked");
        }
    });

    // Everything sent after the swap returned must come from the new
    // engine: any batch containing these requests was formed — and its
    // engine snapshotted — after the swap completed.
    let rows: Vec<BitVec> = (0..80).map(|i| test_row(f, 99, i)).collect();
    let from_new = offline(&engine_new, &rows);
    let mut client = Client::connect(addr).expect("connect");
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(
            client.predict_on(id_swapped, row).expect("predict"),
            from_new[i],
            "row {i}: response after the swap must come from the new engine"
        );
    }

    let stats = server.stats();
    assert_eq!(
        stats.served(),
        (threads * per_thread + 80) as u64,
        "responses went missing under the swap"
    );
    assert_eq!(stats.protocol_errors(), 0);
    assert_eq!(registry.stats(id_swapped).unwrap().swaps(), 1);
    assert_eq!(registry.stats(id_stable).unwrap().swaps(), 0);
    server.shutdown();
}

/// Malformed but well-framed requests are answered with typed error
/// responses and the connection survives; only an unparseable frame (a
/// length prefix past the server's limit) drops the connection.
#[test]
fn bad_requests_get_typed_errors_and_the_connection_survives() {
    let f = 24;
    let (server, engine) = start_test_server(15, f, ServeConfig::default());
    let addr = server.local_addr();

    let row = test_row(f, 1, 1);
    let expected = offline(&engine, std::slice::from_ref(&row))[0];

    let client = Client::connect(addr).expect("connect");
    let (mut tx, mut rx) = client.into_split();

    // Unknown model id: typed error, id echoed.
    let id = tx.send_raw(7, &row).expect("send");
    assert_eq!(rx.recv().expect("recv"), (id, Response::UnknownModel));

    // Wrong row width for the model (too narrow, so the frame itself
    // still fits the server's limit): typed error, id echoed.
    let id = tx.send_raw(0, &test_row(f - 16, 1, 2)).expect("send");
    assert_eq!(rx.recv().expect("recv"), (id, Response::BadRequest));

    // A payload too short to carry a request header: typed error with the
    // sentinel id (the real id was unparseable).
    let raw = poetbin_serve::protocol::encode_request(0, 0, &row);
    let mut stream = TcpStream::connect(addr).expect("connect");
    poetbin_serve::protocol::read_hello(&mut stream).expect("hello");
    poetbin_serve::protocol::write_frame(&mut stream, &raw[..3]).expect("short frame");
    let frame =
        poetbin_serve::protocol::read_frame(&mut stream, poetbin_serve::protocol::RESPONSE_LEN)
            .expect("read")
            .expect("a response, not a hangup");
    assert_eq!(
        poetbin_serve::protocol::decode_response(&frame),
        Some((
            poetbin_serve::protocol::BAD_FRAME_ID,
            poetbin_serve::protocol::STATUS_BAD_REQUEST,
            0
        ))
    );

    // All three connections still work for real requests…
    poetbin_serve::protocol::write_frame(&mut stream, &raw).expect("good frame");
    let frame =
        poetbin_serve::protocol::read_frame(&mut stream, poetbin_serve::protocol::RESPONSE_LEN)
            .expect("read")
            .expect("a response");
    assert_eq!(
        poetbin_serve::protocol::decode_response(&frame),
        Some((0, poetbin_serve::protocol::STATUS_OK, expected as u16))
    );
    let id = tx.send(&row).expect("send");
    assert_eq!(rx.recv().expect("recv"), (id, Response::Class(expected)));

    // …but an oversized length prefix is unrecoverable: rejected without
    // allocation, connection dropped.
    let mut huge = TcpStream::connect(addr).expect("connect");
    poetbin_serve::protocol::read_hello(&mut huge).expect("hello");
    huge.write_all(&u32::MAX.to_le_bytes()).expect("len");
    let mut probe = [0u8; 1];
    let n = std::io::Read::read(&mut huge, &mut probe).expect("server closes cleanly");
    assert_eq!(
        n, 0,
        "connection should be closed after an unparseable frame"
    );

    assert_eq!(server.stats().rejected(), 3);
    assert_eq!(server.stats().protocol_errors(), 1);
    server.shutdown();
}

#[test]
fn shutdown_joins_with_idle_connections_open() {
    let f = 16;
    let (server, _engine) = start_test_server(16, f, ServeConfig::default());
    let _idle1 = Client::connect(server.local_addr()).expect("connect");
    let _idle2 = Client::connect(server.local_addr()).expect("connect");
    // Must not hang despite two blocked reader threads.
    server.shutdown();
}

#[test]
fn load_engine_compiles_persisted_models_and_validates_width() {
    let clf = test_classifier(17, 40);
    let path = std::env::temp_dir().join("poetbin_serve_load_test.poetbin");
    save_classifier_to(&path, &clf, ModelFormat::PoetBin2).expect("save");

    let engine = load_engine(&path, None).expect("load at native width");
    assert_eq!(engine.num_features(), clf.min_features());
    let wide = load_engine(&path, Some(64)).expect("load wider");
    assert_eq!(wide.num_features(), 64);

    let narrow = load_engine(&path, Some(clf.min_features() - 1));
    assert!(
        matches!(narrow, Err(LoadError::WidthTooNarrow { .. })),
        "narrow width must be rejected"
    );
    let missing = load_engine(std::env::temp_dir().join("poetbin_no_such.poetbin"), None);
    assert!(matches!(missing, Err(LoadError::Persist(_))));
    let _ = std::fs::remove_file(&path);
}
