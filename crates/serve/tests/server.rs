//! End-to-end server tests: protocol handshake, single-flight and
//! pipelined prediction, multi-client concurrency, malformed-frame
//! handling and the persist → engine loading path.

use std::collections::HashMap;
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use poetbin_bits::{BitVec, FeatureMatrix, TruthTable};
use poetbin_boost::{MatModule, RincModule, RincNode};
use poetbin_core::persist::save_classifier_to;
use poetbin_core::{PoetBinClassifier, QuantizedSparseOutput, RincBank};
use poetbin_dt::LevelWiseTree;
use poetbin_engine::ClassifierEngine;
use poetbin_serve::{load_engine, Client, LoadError, ServeConfig, Server};
use rand::prelude::*;
use rand::rngs::StdRng;

/// A deterministic, structurally complete classifier (mixed RINC depths)
/// built directly from parts — no training, so the test is fast and the
/// model identical on every run.
fn test_classifier(seed: u64, num_features: usize) -> PoetBinClassifier {
    let mut rng = StdRng::seed_from_u64(seed);
    fn random_node(rng: &mut StdRng, num_features: usize, p: usize, level: usize) -> RincNode {
        if level == 0 {
            let mut features: Vec<usize> = Vec::with_capacity(p);
            while features.len() < p {
                let f = rng.random_range(0..num_features);
                if !features.contains(&f) {
                    features.push(f);
                }
            }
            let table = TruthTable::from_fn(p, |_| rng.random::<bool>());
            return RincNode::Tree(LevelWiseTree::from_parts(features, table));
        }
        let children: Vec<RincNode> = (0..p)
            .map(|_| random_node(rng, num_features, p, level - 1))
            .collect();
        let weights: Vec<f64> = (0..p).map(|_| rng.random_range(0.05..1.0)).collect();
        RincNode::Module(RincModule::from_parts(
            children,
            MatModule::new(weights),
            level,
        ))
    }
    let (classes, p) = (4usize, 3usize);
    let modules: Vec<RincNode> = (0..classes * p)
        .map(|i| random_node(&mut rng, num_features, p, i % 2))
        .collect();
    let weights: Vec<Vec<i32>> = (0..classes)
        .map(|_| (0..p).map(|_| rng.random_range(-40..40)).collect())
        .collect();
    let biases: Vec<i32> = (0..classes).map(|_| rng.random_range(-20..20)).collect();
    let min_score: i64 = weights
        .iter()
        .zip(&biases)
        .map(|(row, &b)| {
            row.iter()
                .filter(|&&w| w < 0)
                .map(|&w| w as i64)
                .sum::<i64>()
                + b as i64
        })
        .min()
        .unwrap();
    let output = QuantizedSparseOutput::from_parts(p, 8, weights, biases, min_score, 0);
    PoetBinClassifier::new(RincBank::from_modules(modules), output)
}

fn test_row(num_features: usize, thread: usize, i: usize) -> BitVec {
    BitVec::from_fn(num_features, |j| {
        (thread
            .wrapping_mul(2654435761)
            .wrapping_add(i.wrapping_mul(40503))
            .wrapping_add(j.wrapping_mul(9973))
            >> 3)
            & 1
            == 1
    })
}

fn start_test_server(
    seed: u64,
    num_features: usize,
    config: ServeConfig,
) -> (Server, Arc<ClassifierEngine>) {
    let clf = test_classifier(seed, num_features);
    let engine = Arc::new(ClassifierEngine::compile(&clf, num_features).expect("compiles"));
    let server = Server::start(Arc::clone(&engine), "127.0.0.1:0", config).expect("bind");
    (server, engine)
}

#[test]
fn hello_reports_model_shape_and_predictions_match_offline_path() {
    let f = 24;
    let (server, engine) = start_test_server(11, f, ServeConfig::default());
    let mut client = Client::connect(server.local_addr()).expect("connect");
    assert_eq!(client.num_features(), f);
    assert_eq!(client.classes(), 4);

    let rows: Vec<BitVec> = (0..100).map(|i| test_row(f, 0, i)).collect();
    let expected = engine.predict(&FeatureMatrix::from_rows(rows.clone()));
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(
            client.predict(row).expect("predict"),
            expected[i],
            "row {i} disagrees with the offline batch path"
        );
    }
    drop(client);
    server.shutdown();
}

#[test]
fn pipelined_requests_come_back_complete_and_correctly_tagged() {
    let f = 20;
    let (server, engine) = start_test_server(12, f, ServeConfig::default());
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let rows: Vec<BitVec> = (0..300).map(|i| test_row(f, 7, i)).collect();
    let expected = engine.predict(&FeatureMatrix::from_rows(rows.clone()));
    let mut want: HashMap<u64, usize> = HashMap::new();
    for (i, row) in rows.iter().enumerate() {
        let id = client.send(row).expect("send");
        want.insert(id, expected[i]);
    }
    for _ in 0..rows.len() {
        let (id, class) = client.recv().expect("recv");
        let expect = want.remove(&id).expect("unknown or duplicate response id");
        assert_eq!(class, expect, "request {id} cross-wired");
    }
    assert!(want.is_empty(), "{} responses dropped", want.len());
    // Pipelined single-connection traffic must have been coalesced into
    // multi-lane words, not served one lane at a time.
    assert_eq!(server.stats().served(), 300);
    assert!(
        server.stats().mean_batch() > 1.5,
        "mean batch {:.2} — micro-batching never engaged",
        server.stats().mean_batch()
    );
    server.shutdown();
}

/// The headline concurrency property: N client threads hammer the server
/// with interleaved pipelined requests; every response must match the
/// offline batch-path prediction for its request id, with nothing dropped
/// and nothing cross-wired between connections.
#[test]
fn concurrent_clients_never_drop_or_cross_wire() {
    let f = 32;
    let threads = 8;
    let per_thread = 400;
    let (server, engine) = start_test_server(13, f, ServeConfig::default());
    let addr = server.local_addr();

    std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for t in 0..threads {
            let engine = Arc::clone(&engine);
            joins.push(scope.spawn(move || {
                let rows: Vec<BitVec> = (0..per_thread).map(|i| test_row(f, t, i)).collect();
                let expected = engine.predict(&FeatureMatrix::from_rows(rows.clone()));
                let mut client = Client::connect(addr).expect("connect");
                // Interleave: bursts of pipelined sends, then collect.
                let mut want: HashMap<u64, usize> = HashMap::new();
                for (chunk_start, chunk) in rows.chunks(23).enumerate() {
                    for (k, row) in chunk.iter().enumerate() {
                        let id = client.send(row).expect("send");
                        want.insert(id, expected[chunk_start * 23 + k]);
                    }
                    for _ in 0..chunk.len() {
                        let (id, class) = client.recv().expect("recv");
                        let expect = want
                            .remove(&id)
                            .expect("response id never requested on this connection");
                        assert_eq!(class, expect, "thread {t}: request {id} wrong class");
                    }
                }
                assert!(want.is_empty(), "thread {t}: {} dropped", want.len());
            }));
        }
        for j in joins {
            j.join().expect("client thread panicked");
        }
    });

    let stats = server.stats();
    assert_eq!(stats.served(), (threads * per_thread) as u64);
    assert_eq!(stats.received(), stats.served());
    assert_eq!(stats.protocol_errors(), 0);
    assert_eq!(stats.connections(), threads as u64);
    server.shutdown();
}

#[test]
fn zero_linger_and_batch_of_one_still_serve_correctly() {
    let f = 16;
    let config = ServeConfig {
        workers: 1,
        linger: Duration::ZERO,
        max_batch: 1,
    };
    let (server, engine) = start_test_server(14, f, config);
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let rows: Vec<BitVec> = (0..50).map(|i| test_row(f, 3, i)).collect();
    let expected = engine.predict(&FeatureMatrix::from_rows(rows.clone()));
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(
            client.predict(row).expect("predict"),
            expected[i],
            "row {i}"
        );
    }
    // max_batch = 1 forces exactly one word per request.
    assert_eq!(server.stats().batches(), 50);
    server.shutdown();
}

#[test]
fn malformed_frame_drops_that_connection_only() {
    let f = 24;
    let (server, engine) = start_test_server(15, f, ServeConfig::default());
    let addr = server.local_addr();

    // A healthy connection before, during and after the bad one.
    let mut good = Client::connect(addr).expect("connect");
    let row = test_row(f, 1, 1);
    let expected = engine.predict(&FeatureMatrix::from_rows(vec![row.clone()]))[0];
    assert_eq!(good.predict(&row).expect("predict"), expected);

    // Raw socket sending a frame whose payload length is wrong for this
    // model: the server must drop the connection.
    let mut bad = TcpStream::connect(addr).expect("connect");
    let mut hello = [0u8; 16];
    std::io::Read::read_exact(&mut bad, &mut hello).expect("hello");
    bad.write_all(&3u32.to_le_bytes()).expect("len");
    bad.write_all(&[1, 2, 3]).expect("payload");
    let mut probe = [0u8; 1];
    let n = std::io::Read::read(&mut bad, &mut probe).expect("server closes cleanly");
    assert_eq!(n, 0, "connection should be closed after a malformed frame");

    // An oversized length prefix is also rejected without allocation.
    let mut huge = TcpStream::connect(addr).expect("connect");
    std::io::Read::read_exact(&mut huge, &mut hello).expect("hello");
    huge.write_all(&u32::MAX.to_le_bytes()).expect("len");
    let n = std::io::Read::read(&mut huge, &mut probe).expect("server closes cleanly");
    assert_eq!(n, 0);

    // The good connection is unaffected.
    assert_eq!(good.predict(&row).expect("predict"), expected);
    assert_eq!(server.stats().protocol_errors(), 2);
    server.shutdown();
}

#[test]
fn shutdown_joins_with_idle_connections_open() {
    let f = 16;
    let (server, _engine) = start_test_server(16, f, ServeConfig::default());
    let _idle1 = Client::connect(server.local_addr()).expect("connect");
    let _idle2 = Client::connect(server.local_addr()).expect("connect");
    // Must not hang despite two blocked reader threads.
    server.shutdown();
}

#[test]
fn load_engine_compiles_persisted_models_and_validates_width() {
    let clf = test_classifier(17, 40);
    let path = std::env::temp_dir().join("poetbin_serve_load_test.poetbin");
    save_classifier_to(&path, &clf).expect("save");

    let engine = load_engine(&path, None).expect("load at native width");
    assert_eq!(engine.num_features(), clf.min_features());
    let wide = load_engine(&path, Some(64)).expect("load wider");
    assert_eq!(wide.num_features(), 64);

    let narrow = load_engine(&path, Some(clf.min_features() - 1));
    assert!(
        matches!(narrow, Err(LoadError::WidthTooNarrow { .. })),
        "narrow width must be rejected"
    );
    let missing = load_engine(std::env::temp_dir().join("poetbin_no_such.poetbin"), None);
    assert!(matches!(missing, Err(LoadError::Persist(_))));
    let _ = std::fs::remove_file(&path);
}
