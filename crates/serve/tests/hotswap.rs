//! Hot-swap robustness: a damaged `POETBIN2` artifact pushed through
//! [`ModelRegistry::swap_validated`] must be rejected *before* the atomic
//! swap — the live engine keeps serving, connected clients never notice,
//! and the same bytes untorn then swap cleanly. The corpus reuses the
//! decoder fuzz families from the persistence suite (truncations, bit
//! flips) at the serving layer.
//!
//! [`ModelRegistry::swap_validated`]: poetbin_serve::ModelRegistry::swap_validated

mod common;

use common::{offline, start_test_server, test_classifier, test_row};
use poetbin_bits::BitVec;
use poetbin_core::{save_classifier, ModelFormat};
use poetbin_engine::{Backend, ClassifierEngine};
use poetbin_serve::{torn_copies, Client, ServeConfig};

/// Every torn copy of a valid replacement model must fail validation,
/// leave the live engine untouched, and leave the client's connection
/// fully usable — checked with a live prediction after every rejection.
#[test]
fn torn_swaps_are_rejected_and_live_traffic_is_undisturbed() {
    let f = 24;
    let (server, engine) = start_test_server(81, f, ServeConfig::default());
    let replacement = test_classifier(82, f);
    let good = save_classifier(&replacement, ModelFormat::PoetBin2);

    let rows: Vec<BitVec> = (0..16).map(|i| test_row(f, 3, i)).collect();
    let expected = offline(&engine, &rows);
    let mut client = Client::connect(server.local_addr()).expect("connect");

    for (i, torn) in torn_copies(&good, 0xfeed_beef, 24).iter().enumerate() {
        let result = server.registry().swap_validated(0, torn, Backend::Interp);
        assert!(
            result.is_err(),
            "torn copy {i} must be rejected, got {result:?}"
        );
        let k = i % rows.len();
        assert_eq!(
            client
                .predict(&rows[k])
                .expect("predict after rejected swap"),
            expected[k],
            "live model disturbed by rejected swap {i}"
        );
    }
    let stats = server.registry().stats(0).expect("model 0 stats");
    assert_eq!(stats.swaps(), 0, "a rejected swap must never commit");

    // The same artifact, undamaged, validates and swaps; the connected
    // client sees the new model's predictions without reconnecting.
    server
        .registry()
        .swap_validated(0, &good, Backend::Interp)
        .expect("the undamaged artifact must swap");
    assert_eq!(server.registry().stats(0).expect("stats").swaps(), 1);
    let swapped = ClassifierEngine::compile(&replacement, f).expect("compiles");
    let now_expected = offline(&swapped, &rows);
    for (k, row) in rows.iter().enumerate() {
        assert_eq!(
            client.predict(row).expect("predict after swap"),
            now_expected[k],
            "row {k} must follow the swapped-in model"
        );
    }
    server.shutdown();
}

/// Random bit flips over the whole artifact (the decoder fuzz family,
/// replayed at the serving layer): every mutation either fails validation
/// or — if it survives decode, compile, and the canary — commits a
/// *working* engine. Either way the server keeps answering correctly.
#[test]
fn bit_flipped_swaps_never_panic_and_never_break_serving() {
    let f = 24;
    let (server, _engine) = start_test_server(83, f, ServeConfig::default());
    let replacement = test_classifier(84, f);
    let good = save_classifier(&replacement, ModelFormat::PoetBin2);

    let row = test_row(f, 4, 0);
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let mut state = 0x8f1b_bcdc_u64;
    let mut committed = 0u64;
    for i in 0..200 {
        // Deterministic xorshift positions — the corpus is reproducible.
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let mut corrupt = good.clone();
        let pos = (state as usize) % corrupt.len();
        corrupt[pos] ^= 1 << (state % 8);
        if server
            .registry()
            .swap_validated(0, &corrupt, Backend::Interp)
            .is_ok()
        {
            // A flip in format slack can survive the full gauntlet; the
            // canary guarantees whatever committed actually predicts.
            committed += 1;
        }
        if i % 20 == 0 {
            let class = client.predict(&row).expect("predict under swap fuzzing");
            let classes = client.models()[0].classes;
            assert!(class < classes, "out-of-range class {class}");
        }
    }
    // The overwhelming majority of flips must be caught by validation
    // (section CRCs localise single-bit damage); a tiny survivor count
    // is possible, a large one means validation is not running.
    assert!(
        committed <= 10,
        "{committed}/200 corrupt artifacts passed validation"
    );

    // Restore the known-good artifact and confirm the served prediction
    // matches an offline compile of the same classifier.
    server
        .registry()
        .swap_validated(0, &good, Backend::Interp)
        .expect("known-good artifact swaps");
    let swapped = ClassifierEngine::compile(&replacement, f).expect("compiles");
    let after = offline(&swapped, std::slice::from_ref(&row))[0];
    assert_eq!(client.predict(&row).expect("predict"), after);
    server.shutdown();
}
