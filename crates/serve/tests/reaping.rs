//! Idle-connection reaping: slow-loris peers dripping partial frames,
//! clients that never read their responses, and abrupt disconnects
//! mid-frame — all under injected partial reads — must be torn down by
//! [`ServeConfig::idle_timeout`] without ever touching a healthy, active
//! client.
//!
//! [`ServeConfig::idle_timeout`]: poetbin_serve::ServeConfig::idle_timeout

mod common;

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use common::{start_test_server, test_row};
use poetbin_bits::BitVec;
use poetbin_serve::protocol;
use poetbin_serve::{Client, FaultPlan, ServeConfig};

/// One request frame as raw wire bytes.
fn raw_frame(model_id: u16, id: u64, row: &BitVec) -> Vec<u8> {
    let mut wire = Vec::new();
    protocol::write_frame(&mut wire, &protocol::encode_request(model_id, id, row))
        .expect("writing to a Vec cannot fail");
    wire
}

/// Polls a counter until it reaches `want` or the deadline passes.
fn wait_for(what: &str, deadline: Duration, mut read: impl FnMut() -> u64, want: u64) {
    let wall = Instant::now() + deadline;
    while read() < want {
        assert!(
            Instant::now() < wall,
            "{what} never reached {want} (at {})",
            read()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// A slow-loris peer drips one byte of a frame at a time and never
/// completes it: partial bytes are deliberately not "activity", so the
/// connection is reaped mid-drip — while an actively predicting client
/// on the same server, with injected short reads in play, is untouched.
#[test]
fn slow_loris_is_reaped_while_active_client_survives() {
    let f = 24;
    let config = ServeConfig {
        idle_timeout: Some(Duration::from_millis(150)),
        fault: Some(FaultPlan {
            short_read: 3,
            ..FaultPlan::quiet(11)
        }),
        ..ServeConfig::default()
    };
    let (server, _engine) = start_test_server(91, f, config);

    let mut loris = TcpStream::connect(server.local_addr()).expect("connect loris");
    loris.set_nodelay(true).expect("nodelay");
    protocol::read_hello(&mut loris).expect("hello");
    let frame = raw_frame(0, 1, &test_row(f, 1, 0));

    let mut client = Client::connect(server.local_addr()).expect("connect active");
    // Drip for ~600ms — four idle timeouts — never completing the frame,
    // while the active client predicts throughout.
    for (i, byte) in frame.iter().take(14).enumerate() {
        // The loris socket may die mid-drip once the server reaps it;
        // that is the expected outcome, not a test failure.
        let _ = loris.write_all(std::slice::from_ref(byte));
        client
            .predict(&test_row(f, 2, i))
            .expect("active client must survive the reaper");
        std::thread::sleep(Duration::from_millis(45));
    }

    wait_for(
        "reaped",
        Duration::from_secs(5),
        || server.stats().reaped(),
        1,
    );
    // The reaped socket is really closed: the loris reads EOF (or a
    // reset), never a response.
    loris
        .set_read_timeout(Some(Duration::from_secs(2)))
        .expect("read timeout");
    let mut buf = [0u8; 16];
    match loris.read(&mut buf) {
        Ok(0) | Err(_) => {}
        Ok(n) => panic!("reaped connection produced {n} bytes"),
    }
    // And the active client still works.
    client.predict(&test_row(f, 2, 99)).expect("still serving");
    server.shutdown();
}

/// A client that pipelines requests and then never reads: once its
/// responses are flushed into the socket buffer and nothing is in
/// flight, the connection goes quiet and must be reaped.
#[test]
fn client_that_never_reads_responses_is_reaped() {
    let f = 24;
    let config = ServeConfig {
        idle_timeout: Some(Duration::from_millis(150)),
        fault: Some(FaultPlan {
            short_read: 2,
            short_write: 3,
            ..FaultPlan::quiet(12)
        }),
        ..ServeConfig::default()
    };
    let (server, _engine) = start_test_server(92, f, config);

    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    protocol::read_hello(&mut stream).expect("hello");
    let mut wire = Vec::new();
    for i in 0..5u64 {
        wire.extend_from_slice(&raw_frame(0, i, &test_row(f, 3, i as usize)));
    }
    stream.write_all(&wire).expect("pipelined write");
    // Never read. All five answers flush into kernel buffers, in-flight
    // drops to zero, and the idle clock runs out.
    wait_for(
        "reaped",
        Duration::from_secs(5),
        || server.stats().reaped(),
        1,
    );

    let stats = server.stats();
    assert_eq!(stats.received(), 5);
    assert_eq!(stats.served() + stats.overloaded(), 5);
    // The server stays healthy for the next client.
    let mut client = Client::connect(server.local_addr()).expect("connect");
    client.predict(&test_row(f, 4, 0)).expect("predict");
    server.shutdown();
}

/// A peer that vanishes mid-frame (half a request on the wire, socket
/// dropped) under injected one-byte reads: the completed frames are
/// answered, the dangling half-frame is discarded with the connection,
/// and the counters reconcile.
#[test]
fn abrupt_disconnect_mid_frame_under_short_reads_reconciles() {
    let f = 24;
    let config = ServeConfig {
        idle_timeout: Some(Duration::from_millis(150)),
        fault: Some(FaultPlan {
            short_read: 1, // every read delivers a single byte
            eagain: 4,
            ..FaultPlan::quiet(13)
        }),
        ..ServeConfig::default()
    };
    let (server, _engine) = start_test_server(93, f, config);

    {
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        protocol::read_hello(&mut stream).expect("hello");
        let mut wire = Vec::new();
        for i in 0..2u64 {
            wire.extend_from_slice(&raw_frame(0, i, &test_row(f, 5, i as usize)));
        }
        let half = raw_frame(0, 2, &test_row(f, 5, 2));
        wire.extend_from_slice(&half[..half.len() / 2]);
        stream.write_all(&wire).expect("write");
        // Read both real answers (one byte at a time server-side), then
        // vanish with the half-frame still dangling.
        for _ in 0..2 {
            protocol::read_frame(&mut stream, protocol::RESPONSE_LEN)
                .expect("read response")
                .expect("a response");
        }
    }

    // Quiescence: the two whole frames are the only received units; the
    // dangling half-frame died with the socket, uncounted.
    let wall = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = server.stats();
        if stats.received() == 2 && stats.served() + stats.overloaded() == 2 {
            break;
        }
        assert!(
            Instant::now() < wall,
            "counters never reconciled: received {} served {}",
            stats.received(),
            stats.served()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(server.stats().protocol_errors(), 0);

    let mut client = Client::connect(server.local_addr()).expect("connect");
    client.predict(&test_row(f, 6, 0)).expect("predict");
    server.shutdown();
}
