//! Chaos suite: replays deterministic seeded fault schedules
//! ([`FaultPlan::from_seed`]) against live servers — short reads/writes,
//! spurious `EAGAIN`/`EINTR`, delayed poller wakeups, injected worker
//! panics, and poisoned frames — and asserts the accounting invariant at
//! quiescence:
//!
//! `received == served + overloaded + deadline_expired + rejected +
//! protocol_errors`
//!
//! with zero lost and zero duplicated responses on every connection, and
//! a bounded graceful drain at the end of every run.

mod common;

use std::collections::{HashMap, HashSet};
use std::io::Write;
use std::net::TcpStream;
use std::sync::Once;
use std::time::{Duration, Instant};

use common::{offline, start_test_server, test_row};
use poetbin_bits::BitVec;
use poetbin_serve::protocol;
use poetbin_serve::{Client, FaultPlan, InjectedPanic, Response, ServeConfig};

/// Requests each well-behaved client pipelines per run.
const REQUESTS: usize = 400;

/// Valid frames the poisoner sends before its garbage length prefix.
const POISON_PREFIX: u64 = 5;

/// Injected worker panics are deliberate; keep them out of the test
/// output so a *real* panic stays visible. Installed once per process.
fn silence_injected_panics() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedPanic>().is_none() {
                previous(info);
            }
        }));
    });
}

/// Response tally observed by one client: (served, shed, expired).
type Tally = (u64, u64, u64);

/// One full chaos run: a seeded server, two pipelined clients, an
/// optional frame poisoner, quiescence, the invariant, and a bounded
/// drain.
fn chaos_run(seed: u64, plan: FaultPlan) {
    silence_injected_panics();
    let f = 24;
    // The knobs vary with the seed so the sweep covers worker counts,
    // queue pressure, linger settings, and deadline shedding — not just
    // fault mixes.
    let config = ServeConfig {
        workers: 1 + (seed as usize) % 3,
        queue_cap: 16 << (seed % 3),
        linger: Duration::from_micros(200 * (seed % 4)),
        deadline: seed.is_multiple_of(3).then(|| Duration::from_millis(50)),
        fault: Some(plan),
        ..ServeConfig::default()
    };
    let (server, engine) = start_test_server(seed ^ 0x5eed, f, config);
    let addr = server.local_addr();

    let mut clients = Vec::new();
    for t in 0..2usize {
        let rows: Vec<BitVec> = (0..REQUESTS).map(|i| test_row(f, t, i)).collect();
        let expected = offline(&engine, &rows);
        clients.push(std::thread::spawn(move || -> Tally {
            let client = Client::connect(addr).expect("connect");
            let (mut tx, mut rx) = client.into_split();
            let mut want: HashMap<u64, usize> = HashMap::new();
            for (i, row) in rows.iter().enumerate() {
                let id = tx.send(row).expect("send");
                want.insert(id, expected[i]);
            }
            // Exactly one response per request: an unknown or repeated id
            // is a lost/duplicated answer and fails the run.
            let (mut ok, mut shed, mut expired) = (0u64, 0u64, 0u64);
            for _ in 0..REQUESTS {
                let (id, response) = rx.recv().expect("recv");
                let expect = want
                    .remove(&id)
                    .unwrap_or_else(|| panic!("unknown or duplicate response {id} (seed {seed})"));
                match response {
                    Response::Class(c) => {
                        assert_eq!(c, expect, "request {id} wrong class (seed {seed})");
                        ok += 1;
                    }
                    Response::Overloaded => shed += 1,
                    Response::DeadlineExceeded => expired += 1,
                    other => panic!("unexpected response {other:?} (seed {seed})"),
                }
            }
            assert!(
                want.is_empty(),
                "{} responses lost (seed {seed})",
                want.len()
            );
            (ok, shed, expired)
        }));
    }

    // Even seeds add a poisoner: a few valid frames, then a garbage
    // length prefix. The valid frames must each get exactly one answer,
    // then the server closes the stream (one `protocol_errors` unit).
    let poisoned = seed.is_multiple_of(2);
    if poisoned {
        let mut stream = TcpStream::connect(addr).expect("connect poisoner");
        stream.set_nodelay(true).expect("nodelay");
        protocol::read_hello(&mut stream).expect("hello");
        let mut wire = Vec::new();
        for i in 0..POISON_PREFIX {
            let frame = protocol::encode_request(0, i, &test_row(f, 9, i as usize));
            protocol::write_frame(&mut wire, &frame).expect("vec write");
        }
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        stream.write_all(&wire).expect("poison write");
        let mut seen: HashSet<u64> = HashSet::new();
        // Reads until a clean EOF or a reset — either way the server hung
        // up after answering what it accepted.
        while let Ok(Some(payload)) = protocol::read_frame(&mut stream, protocol::RESPONSE_LEN) {
            let (id, _, _) = protocol::decode_response(&payload).expect("well-formed");
            assert!(
                id < POISON_PREFIX,
                "answer for an id never sent (seed {seed})"
            );
            assert!(seen.insert(id), "duplicate response {id} (seed {seed})");
        }
        assert_eq!(
            seen.len() as u64,
            POISON_PREFIX,
            "poisoner's valid frames must all be answered before the close (seed {seed})"
        );
    }

    let mut totals = (0u64, 0u64, 0u64);
    for c in clients {
        let (ok, shed, expired) = c.join().expect("client thread panicked");
        totals = (totals.0 + ok, totals.1 + shed, totals.2 + expired);
    }

    // Quiescence: the queue drains and every counter stops moving for
    // two consecutive sample windows.
    let snapshot = || {
        let s = server.stats();
        (
            s.received(),
            s.served(),
            s.overloaded(),
            s.deadline_expired(),
            s.rejected(),
            s.protocol_errors(),
        )
    };
    let wall = Instant::now() + Duration::from_secs(30);
    let mut last = snapshot();
    let mut quiet = 0;
    while quiet < 2 {
        assert!(
            Instant::now() < wall,
            "no quiescence (seed {seed}): counters {last:?}, depth {}",
            server.queue_depth()
        );
        std::thread::sleep(Duration::from_millis(50));
        let now = snapshot();
        quiet = if now == last && server.queue_depth() == 0 {
            quiet + 1
        } else {
            0
        };
        last = now;
    }

    let (received, served, overloaded, deadline_expired, rejected, protocol_errors) = last;
    assert_eq!(
        received,
        served + overloaded + deadline_expired + rejected + protocol_errors,
        "accounting invariant violated (seed {seed}): received {received} served {served} \
         overloaded {overloaded} deadline_expired {deadline_expired} rejected {rejected} \
         protocol_errors {protocol_errors}"
    );
    // Every wire frame the clients sent is accounted: the two pipelined
    // clients observed one typed answer each, the poisoner's prefix was
    // answered, and its garbage tail is the single protocol-error unit.
    let client_frames = 2 * REQUESTS as u64 + if poisoned { POISON_PREFIX + 1 } else { 0 };
    assert_eq!(
        received, client_frames,
        "wire-frame count drifted (seed {seed})"
    );
    assert_eq!(
        totals.0 + totals.1 + totals.2,
        2 * REQUESTS as u64,
        "client-observed outcomes must cover every request (seed {seed})"
    );
    assert_eq!(protocol_errors, u64::from(poisoned), "seed {seed}");
    assert_eq!(
        rejected, 0,
        "no malformed-but-parseable frames were sent (seed {seed})"
    );

    // Graceful drain: bounded, and it reports completing in time.
    assert!(
        server.shutdown_within(Duration::from_secs(10)),
        "drain watchdog expired (seed {seed})"
    );
}

#[test]
fn quiet_baseline_control() {
    // The control run: same harness, no injected faults. Everything the
    // clients sent is answered and the invariant holds trivially.
    chaos_run(1, FaultPlan::quiet(1));
}

#[test]
fn chaos_seeds_00_to_05() {
    for seed in 0..6 {
        chaos_run(seed, FaultPlan::from_seed(seed));
    }
}

#[test]
fn chaos_seeds_06_to_11() {
    for seed in 6..12 {
        chaos_run(seed, FaultPlan::from_seed(seed));
    }
}

#[test]
fn chaos_seeds_12_to_17() {
    for seed in 12..18 {
        chaos_run(seed, FaultPlan::from_seed(seed));
    }
}

#[test]
fn chaos_seeds_18_to_23() {
    for seed in 18..24 {
        chaos_run(seed, FaultPlan::from_seed(seed));
    }
}
