//! Graceful-degradation behaviour end to end: per-request deadline
//! shedding, worker-panic containment, retry-with-jittered-backoff, and
//! the bounded graceful drain — each checked against the accounting
//! invariant.

mod common;

use std::collections::HashSet;
use std::sync::Once;
use std::time::{Duration, Instant};

use common::{offline, start_test_server, test_row};
use poetbin_bits::BitVec;
use poetbin_serve::{Client, FaultPlan, InjectedPanic, Response, RetryPolicy, ServeConfig};

/// Keeps deliberate injected panics out of the test output (real panics
/// stay visible). Installed once per process.
fn silence_injected_panics() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedPanic>().is_none() {
                previous(info);
            }
        }));
    });
}

/// With the linger far past the deadline, every queued request ages out
/// before a batch forms: all of them come back typed
/// `DeadlineExceeded`, none are served, and both the global and the
/// per-model expiry counters account for every one.
#[test]
fn deadline_shorter_than_linger_sheds_every_request_typed() {
    let f = 24;
    let total = 20usize;
    let config = ServeConfig {
        workers: 1,
        linger: Duration::from_millis(60),
        deadline: Some(Duration::from_millis(5)),
        ..ServeConfig::default()
    };
    let (server, _engine) = start_test_server(61, f, config);
    let client = Client::connect(server.local_addr()).expect("connect");
    let (mut tx, mut rx) = client.into_split();

    let mut sent: HashSet<u64> = HashSet::new();
    for i in 0..total {
        sent.insert(tx.send(&test_row(f, 1, i)).expect("send"));
    }
    for _ in 0..total {
        let (id, response) = rx.recv().expect("recv");
        assert!(sent.remove(&id), "unknown or duplicate response {id}");
        assert_eq!(response, Response::DeadlineExceeded);
        assert!(response.is_retryable());
    }

    let stats = server.stats();
    assert_eq!(stats.deadline_expired(), total as u64);
    assert_eq!(stats.served(), 0);
    assert_eq!(
        stats.received(),
        stats.served() + stats.overloaded() + stats.deadline_expired() + stats.rejected()
    );
    let per_model = server.registry().stats(0).expect("model 0");
    assert_eq!(per_model.deadline_expired(), total as u64);
    server.shutdown();
}

/// A generous deadline never fires: everything is served and matches the
/// offline path, and the expiry counters stay at zero.
#[test]
fn generous_deadline_expires_nothing() {
    let f = 24;
    let config = ServeConfig {
        deadline: Some(Duration::from_secs(10)),
        ..ServeConfig::default()
    };
    let (server, engine) = start_test_server(62, f, config);
    let rows: Vec<BitVec> = (0..32).map(|i| test_row(f, 2, i)).collect();
    let expected = offline(&engine, &rows);
    let mut client = Client::connect(server.local_addr()).expect("connect");
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(client.predict(row).expect("predict"), expected[i]);
    }
    assert_eq!(server.stats().deadline_expired(), 0);
    assert_eq!(
        server
            .registry()
            .stats(0)
            .expect("model 0")
            .deadline_expired(),
        0
    );
    server.shutdown();
}

/// Every worker batch panics (injected): each request is shed with a
/// typed `Overloaded` answer instead of vanishing, the worker survives
/// to shed the next batch, and the panic counter records the blast.
#[test]
fn worker_panics_shed_typed_answers_and_the_worker_survives() {
    silence_injected_panics();
    let f = 24;
    let total = 50usize;
    let config = ServeConfig {
        workers: 1,
        fault: Some(FaultPlan {
            panic: 1, // every batch
            ..FaultPlan::quiet(63)
        }),
        ..ServeConfig::default()
    };
    let (server, _engine) = start_test_server(63, f, config);
    let client = Client::connect(server.local_addr()).expect("connect");
    let (mut tx, mut rx) = client.into_split();
    let mut sent: HashSet<u64> = HashSet::new();
    for i in 0..total {
        sent.insert(tx.send(&test_row(f, 3, i)).expect("send"));
    }
    for _ in 0..total {
        let (id, response) = rx.recv().expect("recv");
        assert!(sent.remove(&id), "unknown or duplicate response {id}");
        assert_eq!(response, Response::Overloaded, "panic-shed must be typed");
    }
    let stats = server.stats();
    assert_eq!(stats.served(), 0);
    assert_eq!(stats.overloaded(), total as u64);
    assert!(stats.worker_panics() >= 1);
    assert_eq!(stats.received(), stats.overloaded());
    server.shutdown();
}

/// Retry-with-jittered-backoff rides through intermittent injected
/// panics: every prediction eventually lands (and matches the offline
/// path), with the retry count reported separately.
#[test]
fn predict_with_backoff_rides_through_intermittent_panics() {
    silence_injected_panics();
    let f = 24;
    let config = ServeConfig {
        workers: 1,
        fault: Some(FaultPlan {
            panic: 4, // one batch in four
            ..FaultPlan::quiet(64)
        }),
        ..ServeConfig::default()
    };
    let (server, engine) = start_test_server(64, f, config);
    let rows: Vec<BitVec> = (0..30).map(|i| test_row(f, 4, i)).collect();
    let expected = offline(&engine, &rows);
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let policy = RetryPolicy {
        max_retries: 12,
        ..RetryPolicy::default()
    };
    let mut retries = 0u32;
    for (i, row) in rows.iter().enumerate() {
        let (class, attempts) = client
            .predict_with_backoff(0, row, &policy)
            .expect("backoff must outlast a 1-in-4 panic rate");
        assert_eq!(class, expected[i], "row {i}");
        retries += attempts;
    }
    assert!(
        retries > 0,
        "a 1-in-4 panic rate over 30 single-request batches must force retries"
    );
    assert!(server.stats().worker_panics() >= 1);
    server.shutdown();
}

/// The backoff schedule itself: deterministic in `(seed, salt, attempt)`,
/// bounded by `min(cap, base·2^k)`, and actually jittered across salts.
#[test]
fn backoff_is_deterministic_bounded_and_jittered() {
    let policy = RetryPolicy::default();
    let mut distinct: HashSet<u128> = HashSet::new();
    for attempt in 0..12u32 {
        let ceiling = policy
            .base
            .saturating_mul(1u32 << attempt.min(16))
            .min(policy.cap);
        for salt in 0..8u64 {
            let d = policy.backoff(attempt, salt);
            assert!(
                d <= ceiling,
                "attempt {attempt} salt {salt}: {d:?} > {ceiling:?}"
            );
            assert_eq!(d, policy.backoff(attempt, salt), "must be deterministic");
            distinct.insert(d.as_nanos());
        }
    }
    assert!(
        distinct.len() > 48,
        "full jitter must spread sleeps, got {} distinct values",
        distinct.len()
    );
}

/// Graceful drain under load: `shutdown_within` stops accepting, lets
/// the in-flight work finish, and reports completion inside its grace —
/// with the counters reconciled and no response lost or duplicated for
/// the frames the server actually took.
#[test]
fn shutdown_within_drains_in_flight_and_returns_true() {
    let f = 24;
    let total = 200usize;
    let config = ServeConfig {
        workers: 2,
        linger: Duration::from_millis(5),
        ..ServeConfig::default()
    };
    let (server, _engine) = start_test_server(65, f, config);
    let client = Client::connect(server.local_addr()).expect("connect");
    let (mut tx, mut rx) = client.into_split();
    for i in 0..total {
        tx.send(&test_row(f, 5, i)).expect("send");
    }
    let reader = std::thread::spawn(move || {
        // Drain until the server hangs up (it flushes what it accepted,
        // then closes); every answer must be unique.
        let mut seen: HashSet<u64> = HashSet::new();
        while let Ok((id, _response)) = rx.recv() {
            assert!(seen.insert(id), "duplicate response {id}");
        }
        seen.len() as u64
    });
    // A tiny head start so the burst is genuinely in flight at drain.
    std::thread::sleep(Duration::from_millis(10));
    let stats = server.stats_handle();
    let begun = Instant::now();
    assert!(
        server.shutdown_within(Duration::from_secs(10)),
        "drain watchdog expired"
    );
    assert!(begun.elapsed() < Duration::from_secs(10));
    let answered = reader.join().expect("reader");
    assert_eq!(
        stats.received(),
        stats.served() + stats.overloaded() + stats.rejected(),
        "drain lost requests"
    );
    assert_eq!(
        answered,
        stats.received(),
        "every frame the server took must be answered before the close"
    );
}
