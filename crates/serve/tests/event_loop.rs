//! Torture tests for the epoll event loop: frame reassembly across
//! arbitrarily split reads, bounded-queue load shedding, slow-reader
//! write backpressure (engine work must stop for a peer that stops
//! reading), abrupt-disconnect teardown, shutdown under load, and the
//! stats/health endpoint.

mod common;

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::os::fd::AsRawFd;
use std::sync::mpsc;
use std::time::{Duration, Instant};

use common::{offline, start_test_server, test_row};
use poetbin_bits::BitVec;
use poetbin_serve::protocol::{
    self, BAD_FRAME_ID, STATUS_BAD_REQUEST, STATUS_OK, STATUS_OVERLOADED, STATUS_UNKNOWN_MODEL,
};
use poetbin_serve::{Client, Response, ServeConfig};

/// Reads one response frame off a raw stream.
fn recv_response(stream: &mut impl Read) -> (u64, u8, u16) {
    let payload = protocol::read_frame(stream, protocol::RESPONSE_LEN)
        .expect("read response")
        .expect("a response, not a hangup");
    protocol::decode_response(&payload).expect("well-formed response")
}

/// A request frame (already split across the 4-byte length prefix and the
/// payload) as raw wire bytes.
fn raw_frame(model_id: u16, id: u64, row: &BitVec) -> Vec<u8> {
    let mut wire = Vec::new();
    protocol::write_frame(&mut wire, &protocol::encode_request(model_id, id, row))
        .expect("writing to a Vec cannot fail");
    wire
}

/// The server must reassemble frames no matter how the bytes are split
/// across reads: drip-fed a byte or three at a time, cut mid-length-
/// prefix, cut mid-payload, or several frames coalesced into one write.
#[test]
fn partial_and_coalesced_frames_reassemble_correctly() {
    let f = 24;
    let (server, engine) = start_test_server(71, f, ServeConfig::default());
    let rows: Vec<BitVec> = (0..8).map(|i| test_row(f, 4, i)).collect();
    let expected = offline(&engine, &rows);

    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    protocol::read_hello(&mut stream).expect("hello");

    // First three requests drip-fed in tiny uneven chunks, each write its
    // own TCP segment (nodelay), pauses in between so the poller really
    // observes partial frames — including a cut inside the length prefix.
    let mut wire = Vec::new();
    for (i, row) in rows.iter().take(3).enumerate() {
        wire.extend_from_slice(&raw_frame(0, i as u64, row));
    }
    let mut sizes = [1usize, 2, 3, 1, 5, 7, 2].iter().cycle();
    let mut off = 0;
    while off < wire.len() {
        let n = (*sizes.next().unwrap()).min(wire.len() - off);
        stream.write_all(&wire[off..off + n]).expect("drip write");
        off += n;
        std::thread::sleep(Duration::from_millis(1));
    }
    // Remaining five requests coalesced into a single write.
    let mut coalesced = Vec::new();
    for (i, row) in rows.iter().enumerate().skip(3) {
        coalesced.extend_from_slice(&raw_frame(0, i as u64, row));
    }
    stream.write_all(&coalesced).expect("coalesced write");

    let mut got: HashMap<u64, u16> = HashMap::new();
    for _ in 0..rows.len() {
        let (id, status, class) = recv_response(&mut stream);
        assert_eq!(status, STATUS_OK);
        assert!(got.insert(id, class).is_none(), "duplicate response {id}");
    }
    for (i, &want) in expected.iter().enumerate() {
        assert_eq!(
            got.get(&(i as u64)).copied(),
            Some(want as u16),
            "row {i} disagrees with the offline batch path"
        );
    }
    assert_eq!(server.stats().protocol_errors(), 0);
    server.shutdown();
}

/// Open-loop overload: with one worker, a tiny bounded queue, and a long
/// linger holding batches back, a burst far past capacity must be shed
/// with typed `STATUS_OVERLOADED` responses — queue depth stays bounded,
/// nothing is silently dropped, and the counters reconcile exactly
/// (`received == served + overloaded`; every wire frame lands in exactly
/// one outcome counter).
#[test]
fn overload_sheds_typed_responses_and_queue_depth_stays_bounded() {
    let f = 16;
    let queue_cap = 8;
    let config = ServeConfig {
        workers: 1,
        linger: Duration::from_millis(50),
        queue_cap,
        ..ServeConfig::default()
    };
    let (server, engine) = start_test_server(72, f, config);
    let client = Client::connect(server.local_addr()).expect("connect");
    let (mut tx, mut rx) = client.into_split();

    let total = 200;
    let rows: Vec<BitVec> = (0..total).map(|i| test_row(f, 9, i)).collect();
    let expected = offline(&engine, &rows);
    let mut want: HashMap<u64, usize> = HashMap::new();
    for (i, row) in rows.iter().enumerate() {
        let id = tx.send(row).expect("send");
        want.insert(id, expected[i]);
    }

    let mut classes = 0u64;
    let mut overloaded = 0u64;
    for _ in 0..total {
        let depth = server.queue_depth();
        assert!(
            depth <= queue_cap,
            "queue depth {depth} exceeds the {queue_cap} bound"
        );
        let (id, response) = rx.recv().expect("recv");
        let expect = want.remove(&id).expect("unknown or duplicate response id");
        match response {
            Response::Class(c) => {
                classes += 1;
                assert_eq!(c, expect, "request {id} wrong class");
            }
            Response::Overloaded => overloaded += 1,
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert!(want.is_empty(), "{} responses dropped", want.len());
    assert!(
        overloaded > 0,
        "a {total}-request burst into a {queue_cap}-slot queue must shed"
    );
    assert_eq!(classes + overloaded, total as u64);

    let stats = server.stats();
    assert_eq!(stats.served(), classes);
    assert_eq!(stats.overloaded(), overloaded);
    assert_eq!(
        stats.received(),
        stats.served() + stats.overloaded(),
        "every wire frame must land in exactly one outcome counter"
    );
    assert_eq!(stats.rejected(), 0);
    server.shutdown();
}

/// The write-backpressure half of connection flow control: a client that
/// pipelines thousands of requests but never reads its responses must
/// stall the *server's reads* of that connection (bounded write buffer →
/// reads pause), so engine work for the unreachable peer stops instead
/// of burning tape passes into an ever-growing buffer. Once the client
/// starts reading again, everything completes exactly once.
#[test]
fn slow_reader_pauses_reads_and_stops_engine_work() {
    let f = 32;
    let total = 60_000usize;
    // Kernel socket buffers are clamped to bound how many 15-byte
    // responses the two TCP stacks can absorb: with ~128KiB effective
    // per buffer (the kernel doubles the setsockopt value) the pipeline
    // wedges after at most ~20k responses, far short of `total`. Do NOT
    // clamp below the loopback MSS (32KiB): a segment that cannot fit
    // the receive buffer is dropped and retried with exponential
    // backoff, and the connection crawls at ~0.5KiB per rto instead of
    // stalling cleanly.
    let sock_buf = 64 * 1024;
    let config = ServeConfig {
        workers: 1,
        linger: Duration::ZERO,
        queue_cap: 1024,
        write_buf_cap: 4096,
        sock_buf: Some(sock_buf),
        ..ServeConfig::default()
    };
    let (server, engine) = start_test_server(73, f, config);

    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    // Clamp the client's kernel buffers too — otherwise its receive
    // window absorbs tens of thousands of 15-byte responses.
    epoll::set_socket_buffers(stream.as_raw_fd(), Some(sock_buf), Some(sock_buf)).expect("sockopt");
    protocol::read_hello(&mut stream).expect("hello");

    let rows: Vec<BitVec> = (0..total).map(|i| test_row(f, 5, i)).collect();
    let expected = offline(&engine, &rows);

    let mut write_half = stream.try_clone().expect("clone");
    let frames: Vec<Vec<u8>> = rows
        .iter()
        .enumerate()
        .map(|(i, row)| raw_frame(0, i as u64, row))
        .collect();
    let sender = std::thread::spawn(move || {
        // Blocks mid-way once every buffer between the two ends is full;
        // finishes only when the main thread starts reading responses.
        for frame in &frames {
            write_half.write_all(frame).expect("send");
        }
    });

    // Wait for the pipeline to wedge: the counters freeze while we are
    // not reading. Keep sampling until two consecutive 200ms windows see
    // no movement.
    let deadline = Instant::now() + Duration::from_secs(20);
    let sample = || {
        let s = server.stats();
        (s.received(), s.served(), s.overloaded())
    };
    let mut last = sample();
    let mut quiet = 0;
    while quiet < 2 {
        assert!(Instant::now() < deadline, "pipeline never stalled");
        std::thread::sleep(Duration::from_millis(200));
        let now = sample();
        quiet = if now == last { quiet + 1 } else { 0 };
        last = now;
    }
    let (stalled_received, stalled_served, stalled_overloaded) = last;
    assert!(
        (stalled_received as usize) < total,
        "server processed all {total} requests while the client read nothing — \
         write backpressure never paused its reads"
    );
    assert_eq!(
        stalled_served + stalled_overloaded,
        stalled_received,
        "engine must have drained the queue and gone idle"
    );
    assert_eq!(server.queue_depth(), 0, "queue must be drained at a stall");

    // Start reading: the pause lifts, the sender unblocks, everything
    // arrives exactly once and matches the offline path.
    let mut classes = 0u64;
    let mut overloaded = 0u64;
    let mut seen: HashMap<u64, ()> = HashMap::new();
    for _ in 0..total {
        let (id, status, class) = recv_response(&mut stream);
        assert!(seen.insert(id, ()).is_none(), "duplicate response {id}");
        match status {
            STATUS_OK => {
                classes += 1;
                assert_eq!(
                    class, expected[id as usize] as u16,
                    "request {id} disagrees with the offline batch path"
                );
            }
            STATUS_OVERLOADED => overloaded += 1,
            other => panic!("unexpected status {other}"),
        }
    }
    sender.join().expect("sender thread");
    assert_eq!(classes + overloaded, total as u64);
    let stats = server.stats();
    assert_eq!(stats.served(), classes);
    assert_eq!(stats.received(), stats.served() + stats.overloaded());
    assert_eq!(stats.overloaded(), overloaded);
    server.shutdown();
}

/// A peer that vanishes mid-flight (requests queued, nothing read, socket
/// dropped) must be torn down completely — read half included — with its
/// queued work finished and discarded, counters reconciled, and the
/// server healthy for the next client.
#[test]
fn abrupt_disconnect_mid_flight_tears_down_and_reconciles() {
    let f = 24;
    let (server, engine) = start_test_server(74, f, ServeConfig::default());
    {
        let client = Client::connect(server.local_addr()).expect("connect");
        let (mut tx, _rx) = client.into_split();
        for i in 0..500 {
            // The server may tear the connection down while we are still
            // writing (it answers what it already read to a peer that is
            // gone, hits the write error, and drops the read half too) —
            // a mid-stream send error is the expected outcome here.
            if tx.send(&test_row(f, 6, i)).is_err() {
                break;
            }
        }
        // Both halves drop here: the peer vanishes without reading.
    }

    // Every request that entered a queue must still be evaluated; its
    // completion is discarded at routing. Wait for quiescence.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = server.stats();
        if stats.received() == stats.served() + stats.overloaded() && server.queue_depth() == 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "counters never reconciled: received {} served {} overloaded {}",
            stats.received(),
            stats.served(),
            stats.overloaded()
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // The dead connection must actually be gone (not wedged half-open):
    // the stats endpoint reports live data connections.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let report = fetch_stats(&server);
        if report.get("connections_live").map(String::as_str) == Some("0") {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "dead connection still tracked: {report:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // And the server still serves.
    let row = test_row(f, 8, 0);
    let want = offline(&engine, std::slice::from_ref(&row))[0];
    let mut client = Client::connect(server.local_addr()).expect("connect");
    assert_eq!(client.predict(&row).expect("predict"), want);
    server.shutdown();
}

/// Shutdown with clients mid-burst must join promptly (watchdogged) and
/// leave the counters reconciled: every request that entered a queue is
/// served, everything else was shed or rejected — nothing vanishes.
/// (This is the regression guard for the old design's wedge, where a
/// connection the acceptor failed to track kept a reader thread alive
/// past `shutdown`.)
#[test]
fn shutdown_under_load_joins_promptly_and_counters_reconcile() {
    let f = 20;
    let config = ServeConfig {
        workers: 2,
        queue_cap: 64,
        ..ServeConfig::default()
    };
    let (server, _engine) = start_test_server(75, f, config);
    let addr = server.local_addr();

    let mut clients = Vec::new();
    for t in 0..4 {
        clients.push(std::thread::spawn(move || {
            let Ok(mut client) = Client::connect(addr) else {
                return;
            };
            for i in 0.. {
                // Any error (shed under shutdown, connection closed) ends
                // this client; correctness of the classes is covered
                // elsewhere — this test is about liveness.
                if client.predict(&test_row(f, t, i)).is_err() {
                    break;
                }
            }
        }));
    }
    std::thread::sleep(Duration::from_millis(50));

    // Watchdog: shutdown runs on a helper thread so a wedge (the old
    // design's failure mode — an untracked connection keeping a thread
    // alive) trips the 30-second timeout instead of hanging the suite.
    let stats = server.stats_handle();
    let (done_tx, done_rx) = mpsc::channel();
    std::thread::spawn(move || {
        server.shutdown();
        done_tx.send(()).expect("report shutdown done");
    });
    done_rx
        .recv_timeout(Duration::from_secs(30))
        .expect("shutdown wedged under load");
    assert_eq!(
        stats.received(),
        stats.served() + stats.overloaded() + stats.rejected(),
        "requests vanished across shutdown: received {} served {} (shed {}, rejected {})",
        stats.received(),
        stats.served(),
        stats.overloaded(),
        stats.rejected()
    );
    for c in clients {
        c.join().expect("client thread panicked");
    }
}

/// Interleaved valid, unknown-model, and unparseable-header frames on one
/// pipelined connection: every frame gets exactly one typed answer, valid
/// predictions match the offline path, and the connection survives all of
/// it.
#[test]
fn interleaved_good_and_bad_frames_each_get_one_typed_answer() {
    let f = 24;
    let (server, engine) = start_test_server(76, f, ServeConfig::default());
    let rounds = 60u64;
    let rows: Vec<BitVec> = (0..rounds as usize).map(|i| test_row(f, 2, i)).collect();
    let expected = offline(&engine, &rows);

    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    protocol::read_hello(&mut stream).expect("hello");

    let mut wire = Vec::new();
    for (i, row) in rows.iter().enumerate() {
        let i = i as u64;
        // Valid request for model 0.
        wire.extend_from_slice(&raw_frame(0, i, row));
        // Unknown model id, real request id.
        wire.extend_from_slice(&raw_frame(999, 1000 + i, row));
        // Too short to carry a request header: answered with the
        // sentinel id.
        let short = protocol::encode_request(0, i, row);
        let mut frame = Vec::new();
        protocol::write_frame(&mut frame, &short[..5]).expect("vec write");
        wire.extend_from_slice(&frame);
    }
    stream.write_all(&wire).expect("pipelined write");

    let (mut ok, mut unknown, mut bad) = (0u64, 0u64, 0u64);
    for _ in 0..3 * rounds {
        let (id, status, class) = recv_response(&mut stream);
        match status {
            STATUS_OK => {
                assert!(id < rounds, "prediction for an id never sent");
                assert_eq!(class, expected[id as usize] as u16, "request {id}");
                ok += 1;
            }
            STATUS_UNKNOWN_MODEL => {
                assert!((1000..1000 + rounds).contains(&id));
                unknown += 1;
            }
            STATUS_BAD_REQUEST => {
                assert_eq!(id, BAD_FRAME_ID);
                bad += 1;
            }
            other => panic!("unexpected status {other}"),
        }
    }
    assert_eq!((ok, unknown, bad), (rounds, rounds, rounds));
    let stats = server.stats();
    assert_eq!(stats.rejected(), 2 * rounds);
    assert_eq!(stats.protocol_errors(), 0);
    assert_eq!(stats.received(), stats.served() + stats.rejected());
    server.shutdown();
}

/// Fetches and parses the plain-text stats report into a key → value map
/// (model lines keyed by their first token).
fn fetch_stats(server: &poetbin_serve::Server) -> HashMap<String, String> {
    let mut stream = TcpStream::connect(server.stats_addr()).expect("connect stats");
    let mut text = String::new();
    stream.read_to_string(&mut text).expect("read stats");
    let (header, body) = text
        .split_once("\r\n\r\n")
        .expect("an HTTP header before the report");
    assert!(
        header.starts_with("HTTP/1.0 200 OK"),
        "unexpected status line: {header:?}"
    );
    body.lines()
        .filter_map(|line| {
            let (k, v) = line.split_once(' ')?;
            Some((k.to_string(), v.to_string()))
        })
        .collect()
}

/// The stats endpoint answers every fresh connection with a parseable
/// snapshot of the counters, queue depths, and per-model lines.
#[test]
fn stats_endpoint_reports_counters_queue_depths_and_models() {
    let f = 16;
    let config = ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    };
    let (server, _engine) = start_test_server(77, f, config);
    let mut client = Client::connect(server.local_addr()).expect("connect");
    for i in 0..5 {
        client.predict(&test_row(f, 1, i)).expect("predict");
    }

    let report = fetch_stats(&server);
    assert_eq!(report.get("status").map(String::as_str), Some("ok"));
    assert_eq!(report.get("received").map(String::as_str), Some("5"));
    assert_eq!(report.get("served").map(String::as_str), Some("5"));
    assert_eq!(report.get("overloaded").map(String::as_str), Some("0"));
    assert_eq!(
        report.get("connections_live").map(String::as_str),
        Some("1")
    );
    assert_eq!(
        report.get("queue_depth_total").map(String::as_str),
        Some("0")
    );
    assert!(report.contains_key("queue_depth_0"));
    assert!(report.contains_key("queue_depth_1"));
    assert!(report.contains_key("uptime_us"));
    assert!(
        report.get("model_0").is_some_and(|v| v.contains("name=m0")
            && v.contains("received=5")
            && v.contains("served=5")),
        "model line missing or wrong: {:?}",
        report.get("model_0")
    );

    // A second snapshot is independently served (one connection each).
    let again = fetch_stats(&server);
    assert_eq!(again.get("received").map(String::as_str), Some("5"));
    server.shutdown();
}
