//! Helpers shared by the serve integration tests: a deterministic test
//! classifier, row generation, the offline ground-truth path, and server
//! bring-up.

// Each integration-test binary compiles this module independently and
// uses a different subset of it.
#![allow(dead_code)]

use std::sync::Arc;

use poetbin_bits::{BitVec, FeatureMatrix, TruthTable};
use poetbin_boost::{MatModule, RincModule, RincNode};
use poetbin_core::{PoetBinClassifier, QuantizedSparseOutput, RincBank};
use poetbin_dt::LevelWiseTree;
use poetbin_engine::ClassifierEngine;
use poetbin_serve::{ModelRegistry, Response, ServeConfig, Server};
use rand::prelude::*;
use rand::rngs::StdRng;

/// A deterministic, structurally complete classifier (mixed RINC depths)
/// built directly from parts — no training, so the tests are fast and the
/// model identical on every run.
pub fn test_classifier(seed: u64, num_features: usize) -> PoetBinClassifier {
    let mut rng = StdRng::seed_from_u64(seed);
    fn random_node(rng: &mut StdRng, num_features: usize, p: usize, level: usize) -> RincNode {
        if level == 0 {
            let mut features: Vec<usize> = Vec::with_capacity(p);
            while features.len() < p {
                let f = rng.random_range(0..num_features);
                if !features.contains(&f) {
                    features.push(f);
                }
            }
            let table = TruthTable::from_fn(p, |_| rng.random::<bool>());
            return RincNode::Tree(LevelWiseTree::from_parts(features, table));
        }
        let children: Vec<RincNode> = (0..p)
            .map(|_| random_node(rng, num_features, p, level - 1))
            .collect();
        let weights: Vec<f64> = (0..p).map(|_| rng.random_range(0.05..1.0)).collect();
        RincNode::Module(RincModule::from_parts(
            children,
            MatModule::new(weights),
            level,
        ))
    }
    let (classes, p) = (4usize, 3usize);
    let modules: Vec<RincNode> = (0..classes * p)
        .map(|i| random_node(&mut rng, num_features, p, i % 2))
        .collect();
    let weights: Vec<Vec<i32>> = (0..classes)
        .map(|_| (0..p).map(|_| rng.random_range(-40..40)).collect())
        .collect();
    let biases: Vec<i32> = (0..classes).map(|_| rng.random_range(-20..20)).collect();
    let min_score: i64 = weights
        .iter()
        .zip(&biases)
        .map(|(row, &b)| {
            row.iter()
                .filter(|&&w| w < 0)
                .map(|&w| w as i64)
                .sum::<i64>()
                + b as i64
        })
        .min()
        .unwrap();
    let output = QuantizedSparseOutput::from_parts(p, 8, weights, biases, min_score, 0);
    PoetBinClassifier::new(RincBank::from_modules(modules), output)
}

pub fn test_engine(seed: u64, num_features: usize) -> Arc<ClassifierEngine> {
    let clf = test_classifier(seed, num_features);
    Arc::new(ClassifierEngine::compile(&clf, num_features).expect("compiles"))
}

pub fn test_row(num_features: usize, thread: usize, i: usize) -> BitVec {
    BitVec::from_fn(num_features, |j| {
        (thread
            .wrapping_mul(2654435761)
            .wrapping_add(i.wrapping_mul(40503))
            .wrapping_add(j.wrapping_mul(9973))
            >> 3)
            & 1
            == 1
    })
}

/// Offline ground truth for a set of rows on one engine.
pub fn offline(engine: &ClassifierEngine, rows: &[BitVec]) -> Vec<usize> {
    engine.predict(&FeatureMatrix::from_rows(rows.to_vec()))
}

pub fn start_test_server(
    seed: u64,
    num_features: usize,
    config: ServeConfig,
) -> (Server, Arc<ClassifierEngine>) {
    let engine = test_engine(seed, num_features);
    let mut registry = ModelRegistry::new();
    registry.register("m0", Arc::clone(&engine));
    let server = Server::start(Arc::new(registry), "127.0.0.1:0", config).expect("bind");
    (server, engine)
}

/// Unwraps a response that must carry a prediction.
pub fn class_of(response: Response) -> usize {
    match response {
        Response::Class(c) => c,
        other => panic!("expected a prediction, got {other:?}"),
    }
}
