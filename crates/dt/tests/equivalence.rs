//! Randomized equivalence of the popcount training engine against the
//! scalar reference trainer.
//!
//! `LevelWiseTree::train` (word-parallel masked popcounts / bucketed
//! accumulation) must produce the same trees as
//! `LevelWiseTree::train_scalar` (the original per-bit loop) on every
//! weight shape it dispatches on: uniform, whole-number (boosting by
//! resampling draw counts) and arbitrary `f64`. Written as deterministic
//! seeded loops so they run in the offline build environment.

use poetbin_bits::{BitVec, FeatureMatrix};
use poetbin_dt::{LevelTreeConfig, LevelWiseTree};
use rand::prelude::*;

/// Example counts straddling every word-alignment case the packed masks
/// can hit: `n % 64 ∈ {0, 1, 63}` plus small odd shapes.
const TAIL_SHAPES: [usize; 6] = [64, 65, 63, 128, 127, 37];

fn random_matrix(rng: &mut StdRng, n: usize, f: usize) -> FeatureMatrix {
    // Mix a few informative columns with noise so the entropy scan has
    // real structure (and real near-ties) to rank.
    let hidden: Vec<bool> = (0..n).map(|_| rng.random::<bool>()).collect();
    FeatureMatrix::from_fn(n, f, |e, j| {
        if j % 5 == 0 {
            hidden[e] ^ (rng_hash(e, j) & 7 == 0)
        } else {
            rng_hash(e, j) & 1 == 1
        }
    })
}

/// Cheap deterministic per-cell hash (the matrices must not depend on RNG
/// call order inside `from_fn`).
fn rng_hash(e: usize, j: usize) -> usize {
    e.wrapping_mul(0x9E37_79B9)
        .wrapping_add(j.wrapping_mul(0x85EB_CA6B))
        .rotate_left(13)
        .wrapping_mul(0xC2B2_AE35)
        >> 7
}

fn random_labels(rng: &mut StdRng, data: &FeatureMatrix) -> BitVec {
    // Labels correlated with a couple of features plus noise.
    BitVec::from_fn(data.num_examples(), |e| {
        let base = data.bit(e, 0) ^ data.bit(e, data.num_features() / 2);
        base ^ (rng.random::<f64>() < 0.15)
    })
}

fn assert_equivalent(
    data: &FeatureMatrix,
    labels: &BitVec,
    weights: &[f64],
    config: &LevelTreeConfig,
    what: &str,
) {
    let (fast, fast_report) = LevelWiseTree::train_with_report(data, labels, weights, config);
    let (slow, slow_report) =
        LevelWiseTree::train_scalar_with_report(data, labels, weights, config);
    assert_eq!(
        fast.features(),
        slow.features(),
        "{what}: chosen features diverge"
    );
    assert_eq!(fast.table(), slow.table(), "{what}: truth tables diverge");
    assert_eq!(
        fast_report.empty_leaves, slow_report.empty_leaves,
        "{what}: empty-leaf counts diverge"
    );
    assert_eq!(
        fast_report.level_entropies.len(),
        slow_report.level_entropies.len()
    );
    for (level, (a, b)) in fast_report
        .level_entropies
        .iter()
        .zip(&slow_report.level_entropies)
        .enumerate()
    {
        assert!(
            (a - b).abs() <= 1e-12,
            "{what}: level {level} entropy diverges: {a} vs {b}"
        );
    }
    assert!(
        (fast_report.train_error - slow_report.train_error).abs() <= 1e-12,
        "{what}: train error diverges"
    );
}

#[test]
fn uniform_weights_match_scalar_trainer() {
    let mut rng = StdRng::seed_from_u64(0x50E7);
    for &n in &TAIL_SHAPES {
        for p in [1usize, 3, 5] {
            let f = 24;
            let data = random_matrix(&mut rng, n, f);
            let labels = random_labels(&mut rng, &data);
            // Unit weights and a non-unit uniform weight (AdaBoost's 1/n).
            // Scaled-uniform entropies are computed with different rounding
            // in the two trainers (count·w vs a folded sum of w's), so
            // feature identity here relies on these deterministic datasets
            // having no candidates tied within that noise — which random
            // structure guarantees at these sizes.
            for w in [1.0, 1.0 / n as f64] {
                let weights = vec![w; n];
                let cfg = LevelTreeConfig::new(p);
                assert_equivalent(
                    &data,
                    &labels,
                    &weights,
                    &cfg,
                    &format!("uniform w={w}, n={n}, p={p}"),
                );
            }
        }
    }
}

#[test]
fn integer_weights_match_scalar_trainer() {
    let mut rng = StdRng::seed_from_u64(0x1D7E);
    for &n in &TAIL_SHAPES {
        let data = random_matrix(&mut rng, n, 20);
        let labels = random_labels(&mut rng, &data);
        // Resample-style draw counts: multinomial-ish with zeros, summing
        // anywhere near n, including weights needing several bit-planes.
        let mut weights = vec![0.0f64; n];
        for _ in 0..n {
            weights[rng.random_range(0..n)] += 1.0;
        }
        weights[rng.random_range(0..n)] += 11.0; // force multi-plane counts
        let cfg = LevelTreeConfig::new(4);
        assert_equivalent(&data, &labels, &weights, &cfg, &format!("integer n={n}"));
    }
}

#[test]
fn arbitrary_f64_weights_match_scalar_trainer_bit_for_bit() {
    let mut rng = StdRng::seed_from_u64(0xF64);
    for &n in &TAIL_SHAPES {
        let data = random_matrix(&mut rng, n, 20);
        let labels = random_labels(&mut rng, &data);
        // AdaBoost-shaped weights: positive, wildly uneven, plus a
        // zero-weight run to exercise weight-empty nodes.
        let mut weights: Vec<f64> = (0..n).map(|_| rng.random::<f64>().exp2() * 0.1).collect();
        for w in weights.iter_mut().take(n / 8) {
            *w = 0.0;
        }
        let (fast, fast_report) =
            LevelWiseTree::train_with_report(&data, &labels, &weights, &LevelTreeConfig::new(4));
        let (slow, slow_report) = LevelWiseTree::train_scalar_with_report(
            &data,
            &labels,
            &weights,
            &LevelTreeConfig::new(4),
        );
        // The bucketed f64 path re-orders nothing: it must agree with the
        // scalar trainer exactly, entropies included.
        assert_eq!(fast, slow, "f64 path must be bit-identical, n={n}");
        assert_eq!(fast_report.level_entropies, slow_report.level_entropies);
        assert_eq!(fast_report.empty_leaves, slow_report.empty_leaves);
        assert_eq!(fast_report.train_error, slow_report.train_error);
    }
}

#[test]
fn candidate_restriction_and_policies_match_scalar_trainer() {
    let mut rng = StdRng::seed_from_u64(0xCA2D);
    let n = 127;
    let data = random_matrix(&mut rng, n, 30);
    let labels = random_labels(&mut rng, &data);
    let weights: Vec<f64> = (0..n).map(|e| f64::from((e % 3) as u32)).collect();
    let pool: Vec<usize> = (0..30).filter(|j| j % 2 == 1).collect();
    for policy in [
        poetbin_dt::EmptyLeafPolicy::PaperOne,
        poetbin_dt::EmptyLeafPolicy::GlobalMajority,
    ] {
        let cfg = LevelTreeConfig::new(6)
            .with_candidates(pool.clone())
            .with_empty_leaf(policy);
        assert_equivalent(&data, &labels, &weights, &cfg, &format!("{policy:?}"));
    }
}

#[test]
fn thread_sharding_matches_single_thread() {
    let mut rng = StdRng::seed_from_u64(0x74AD);
    let n = 1000;
    let data = random_matrix(&mut rng, n, 64);
    let labels = random_labels(&mut rng, &data);
    for weights in [
        vec![1.0; n],
        (0..n).map(|e| ((e * 13) % 7) as f64).collect::<Vec<_>>(),
        (0..n)
            .map(|e| 0.01 + (e % 11) as f64 * 0.37)
            .collect::<Vec<_>>(),
    ] {
        let trees: Vec<LevelWiseTree> = [1usize, 2, 5, 16]
            .iter()
            .map(|&t| {
                LevelWiseTree::train(
                    &data,
                    &labels,
                    &weights,
                    &LevelTreeConfig::new(5).with_threads(t),
                )
            })
            .collect();
        for pair in trees.windows(2) {
            assert_eq!(pair[0], pair[1], "thread count changed the tree");
        }
    }
}
