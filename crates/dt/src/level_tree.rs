//! The level-wise decision tree of PoET-BiN (Algorithm 1): RINC-0.

use serde::{Deserialize, Serialize};

use poetbin_bits::{BitVec, FeatureMatrix, TruthTable};

use crate::entropy::weighted_binary_entropy;
use crate::BitClassifier;

/// What label an unreached leaf (no training example lands in it) receives.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum EmptyLeafPolicy {
    /// Follow Algorithm 1 literally: `S0 <= S1` with both sums zero yields
    /// class 1.
    #[default]
    PaperOne,
    /// Fall back to the overall (weighted) majority class of the training
    /// set — usually slightly more accurate on sparse data.
    GlobalMajority,
}

/// Configuration for training a [`LevelWiseTree`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LevelTreeConfig {
    /// Number of tree levels = number of LUT inputs `P`.
    pub inputs: usize,
    /// Optional restriction of the candidate feature pool; `None` means all
    /// features of the dataset may be chosen.
    pub candidates: Option<Vec<usize>>,
    /// Label policy for leaves that receive no training examples.
    pub empty_leaf: EmptyLeafPolicy,
}

impl LevelTreeConfig {
    /// Convenience constructor for a `P`-input tree over all features.
    pub fn new(inputs: usize) -> Self {
        LevelTreeConfig {
            inputs,
            candidates: None,
            empty_leaf: EmptyLeafPolicy::default(),
        }
    }

    /// Restricts candidate features (builder style).
    pub fn with_candidates(mut self, candidates: Vec<usize>) -> Self {
        self.candidates = Some(candidates);
        self
    }

    /// Sets the empty-leaf policy (builder style).
    pub fn with_empty_leaf(mut self, policy: EmptyLeafPolicy) -> Self {
        self.empty_leaf = policy;
        self
    }
}

/// Diagnostics produced while training a [`LevelWiseTree`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LevelTrainReport {
    /// Weighted conditional entropy after each level was added.
    pub level_entropies: Vec<f64>,
    /// Number of leaves that received no training example.
    pub empty_leaves: usize,
    /// Weighted training error of the finished tree.
    pub train_error: f64,
}

/// The paper's modified decision tree: `P` levels, one feature per level,
/// equivalent to a single `P`-input LUT (RINC-0, Figure 1).
///
/// The tree stores the `P` chosen feature indices and the complete
/// `2^P`-entry truth table of leaf labels. Prediction is a single table
/// look-up — exactly the O(1) leaf selection the paper highlights.
///
/// Address convention: the feature chosen at level `i` drives address bit
/// `i` of the truth table (`features()[0]` is the least-significant bit).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LevelWiseTree {
    features: Vec<usize>,
    table: TruthTable,
}

impl LevelWiseTree {
    /// Trains a tree with Algorithm 1 of the paper.
    ///
    /// Greedily selects, for each of the `config.inputs` levels, the unused
    /// feature that minimises the weighted entropy summed over all nodes of
    /// the new level; then labels every leaf with its weighted majority
    /// class (`S0 <= S1 → 1`).
    ///
    /// # Panics
    ///
    /// Panics if `labels`/`weights` lengths disagree with `data`, if any
    /// weight is negative, or if fewer candidate features exist than levels
    /// requested.
    pub fn train(
        data: &FeatureMatrix,
        labels: &BitVec,
        weights: &[f64],
        config: &LevelTreeConfig,
    ) -> Self {
        Self::train_with_report(data, labels, weights, config).0
    }

    /// Like [`LevelWiseTree::train`] but also returns training diagnostics.
    ///
    /// # Panics
    ///
    /// Same conditions as [`LevelWiseTree::train`].
    pub fn train_with_report(
        data: &FeatureMatrix,
        labels: &BitVec,
        weights: &[f64],
        config: &LevelTreeConfig,
    ) -> (Self, LevelTrainReport) {
        let n = data.num_examples();
        assert_eq!(labels.len(), n, "label / data length mismatch");
        assert_eq!(weights.len(), n, "weight / data length mismatch");
        assert!(weights.iter().all(|w| *w >= 0.0), "negative example weight");
        let p = config.inputs;
        let pool: Vec<usize> = match &config.candidates {
            Some(c) => {
                for &j in c {
                    assert!(
                        j < data.num_features(),
                        "candidate feature {j} out of range"
                    );
                }
                c.clone()
            }
            None => (0..data.num_features()).collect(),
        };
        assert!(
            pool.len() >= p,
            "need at least {p} candidate features, have {}",
            pool.len()
        );

        // node_of[e] is the index of the node example e currently sits in,
        // reading chosen features as little-endian address bits.
        let mut node_of = vec![0u32; n];
        let mut used = vec![false; data.num_features()];
        let mut features = Vec::with_capacity(p);
        let mut level_entropies = Vec::with_capacity(p);

        // Cache labels as a plain byte per example: the innermost loop below
        // runs n × F × P times and BitVec::get's shift/mask per label costs
        // measurably more than an indexed byte load.
        let label_u8: Vec<u8> = (0..n).map(|e| u8::from(labels.get(e))).collect();

        for level in 0..p {
            let new_nodes = 1usize << (level + 1);
            let mut best: Option<(usize, f64)> = None;

            for &feat in &pool {
                if used[feat] {
                    continue;
                }
                let col = data.feature(feat);
                // counts[(node << 1 | bit) * 2 + class] = total weight.
                let mut counts = vec![0.0f64; new_nodes * 2];
                for e in 0..n {
                    let bit = u32::from(col.get(e));
                    let child = ((node_of[e] << 1) | bit) as usize;
                    counts[child * 2 + label_u8[e] as usize] += weights[e];
                }
                let total: f64 = counts.iter().sum();
                let mut level_entropy = 0.0;
                if total > 0.0 {
                    for node in 0..new_nodes {
                        let w0 = counts[node * 2];
                        let w1 = counts[node * 2 + 1];
                        level_entropy += (w0 + w1) / total * weighted_binary_entropy(w0, w1);
                    }
                }
                let better = match best {
                    None => true,
                    Some((_, e)) => level_entropy < e - 1e-15,
                };
                if better {
                    best = Some((feat, level_entropy));
                }
            }

            let (feat, entropy) = best.expect("candidate pool exhausted");
            used[feat] = true;
            features.push(feat);
            level_entropies.push(entropy);
            let col = data.feature(feat);
            for (e, node) in node_of.iter_mut().enumerate() {
                *node = (*node << 1) | u32::from(col.get(e));
            }
        }

        // node_of holds big-endian addresses (level 0 = most significant);
        // refill leaf statistics in the little-endian convention used by the
        // truth table so predict() can call FeatureMatrix::address directly.
        let leaves = 1usize << p;
        let mut leaf_w = vec![0.0f64; leaves * 2];
        for e in 0..n {
            let be = node_of[e] as usize;
            let le = reverse_bits(be, p);
            leaf_w[le * 2 + label_u8[e] as usize] += weights[e];
        }

        let (mut total_w0, mut total_w1) = (0.0, 0.0);
        for leaf in 0..leaves {
            total_w0 += leaf_w[leaf * 2];
            total_w1 += leaf_w[leaf * 2 + 1];
        }
        let majority = total_w1 >= total_w0;

        let mut empty_leaves = 0;
        let table = TruthTable::from_fn(p, |leaf| {
            let w0 = leaf_w[leaf * 2];
            let w1 = leaf_w[leaf * 2 + 1];
            if w0 == 0.0 && w1 == 0.0 {
                empty_leaves += 1;
                match config.empty_leaf {
                    EmptyLeafPolicy::PaperOne => true,
                    EmptyLeafPolicy::GlobalMajority => majority,
                }
            } else {
                // Algorithm 1: S0 <= S1 → label 1.
                w0 <= w1
            }
        });

        let tree = LevelWiseTree { features, table };
        let train_error = tree.weighted_error(data, labels, weights);
        (
            tree,
            LevelTrainReport {
                level_entropies,
                empty_leaves,
                train_error,
            },
        )
    }

    /// Builds a tree directly from chosen features and a truth table,
    /// bypassing training (used by deserialisation and tests).
    ///
    /// # Panics
    ///
    /// Panics if `table.inputs() != features.len()`.
    pub fn from_parts(features: Vec<usize>, table: TruthTable) -> Self {
        assert_eq!(
            table.inputs(),
            features.len(),
            "truth table arity must match feature count"
        );
        LevelWiseTree { features, table }
    }

    /// The feature selected at each level (level 0 first; drives address
    /// bit 0).
    pub fn features(&self) -> &[usize] {
        &self.features
    }

    /// The LUT contents: leaf labels for every feature combination.
    pub fn table(&self) -> &TruthTable {
        &self.table
    }

    /// Number of LUT inputs `P`.
    pub fn inputs(&self) -> usize {
        self.features.len()
    }

    /// Predicts every example word-parallel: the chosen feature columns
    /// are fed 64 examples at a time through the shared Shannon-recursion
    /// kernel [`TruthTable::eval_words`], exactly as the FPGA simulator
    /// and the `poetbin-engine` batch plan evaluate a LUT.
    pub fn predict_matrix(&self, data: &FeatureMatrix) -> BitVec {
        let n = data.num_examples();
        let cols: Vec<&[u64]> = self
            .features
            .iter()
            .map(|&f| data.feature(f).as_words())
            .collect();
        let mut ops = vec![0u64; cols.len()];
        let mut out = BitVec::zeros(n);
        for (w, word) in out.as_words_mut().iter_mut().enumerate() {
            for (op, col) in ops.iter_mut().zip(&cols) {
                *op = col[w];
            }
            *word = self.table.eval_words(&ops);
        }
        out.mask_tail();
        out
    }
}

impl BitClassifier for LevelWiseTree {
    fn predict_row(&self, row: &BitVec) -> bool {
        let mut addr = 0usize;
        for (pos, &j) in self.features.iter().enumerate() {
            if row.get(j) {
                addr |= 1 << pos;
            }
        }
        self.table.eval(addr)
    }

    fn predict_batch(&self, data: &FeatureMatrix) -> BitVec {
        self.predict_matrix(data)
    }
}

/// Reverses the `width` lowest bits of `value`.
fn reverse_bits(value: usize, width: usize) -> usize {
    let mut out = 0usize;
    for i in 0..width {
        if (value >> i) & 1 == 1 {
            out |= 1 << (width - 1 - i);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustive dataset over `f` features: example `e` has feature `j`
    /// set when bit `j` of `e` is one.
    fn exhaustive(f: usize) -> FeatureMatrix {
        FeatureMatrix::from_fn(1 << f, f, |e, j| (e >> j) & 1 == 1)
    }

    #[test]
    fn reverse_bits_works() {
        assert_eq!(reverse_bits(0b001, 3), 0b100);
        assert_eq!(reverse_bits(0b110, 3), 0b011);
        assert_eq!(reverse_bits(0b1, 1), 0b1);
        assert_eq!(reverse_bits(0, 4), 0);
    }

    #[test]
    fn learns_single_relevant_feature() {
        let data = exhaustive(5);
        let labels = BitVec::from_fn(32, |e| (e >> 3) & 1 == 1);
        let w = vec![1.0; 32];
        let tree = LevelWiseTree::train(&data, &labels, &w, &LevelTreeConfig::new(1));
        assert_eq!(tree.features(), &[3]);
        assert_eq!(tree.accuracy(&data, &labels), 1.0);
    }

    #[test]
    fn learns_xor_exactly_with_two_levels() {
        // XOR makes every single feature look equally useless (entropy 1),
        // so greedy selection falls back to the deterministic lowest-index
        // tie-break. With the XOR pair at indices 0 and 1, two levels
        // recover the function exactly — the Figure 1 capacity argument.
        let data = exhaustive(6);
        let labels = BitVec::from_fn(64, |e| (e ^ (e >> 1)) & 1 == 1);
        let w = vec![1.0; 64];
        let (tree, report) =
            LevelWiseTree::train_with_report(&data, &labels, &w, &LevelTreeConfig::new(2));
        let mut chosen = tree.features().to_vec();
        chosen.sort_unstable();
        assert_eq!(chosen, vec![0, 1]);
        assert_eq!(tree.accuracy(&data, &labels), 1.0);
        assert_eq!(report.train_error, 0.0);
        assert_eq!(*report.level_entropies.last().unwrap(), 0.0);
        assert_eq!(report.empty_leaves, 0);
    }

    #[test]
    fn xor_defeats_single_level_but_not_two() {
        // Entropy of any single feature on XOR labels is 1 bit: level-wise
        // training still recovers it once paired, demonstrating the capacity
        // argument of §2.1.1.
        let data = exhaustive(4);
        let labels = BitVec::from_fn(16, |e| ((e) ^ (e >> 1)) & 1 == 1);
        let w = vec![1.0; 16];
        let one = LevelWiseTree::train(&data, &labels, &w, &LevelTreeConfig::new(1));
        assert!(one.accuracy(&data, &labels) <= 0.5 + 1e-9);
        let two = LevelWiseTree::train(&data, &labels, &w, &LevelTreeConfig::new(2));
        assert_eq!(two.accuracy(&data, &labels), 1.0);
    }

    #[test]
    fn respects_candidate_restriction() {
        let data = exhaustive(5);
        // Label is feature 0, but feature 0 is excluded from the pool.
        let labels = BitVec::from_fn(32, |e| e & 1 == 1);
        let w = vec![1.0; 32];
        let cfg = LevelTreeConfig::new(2).with_candidates(vec![1, 2, 3, 4]);
        let tree = LevelWiseTree::train(&data, &labels, &w, &cfg);
        assert!(!tree.features().contains(&0));
    }

    #[test]
    fn features_are_distinct() {
        let data = exhaustive(6);
        let labels = BitVec::from_fn(64, |e| (e.count_ones() % 2) == 1);
        let w = vec![1.0; 64];
        let tree = LevelWiseTree::train(&data, &labels, &w, &LevelTreeConfig::new(4));
        let mut f = tree.features().to_vec();
        f.sort_unstable();
        f.dedup();
        assert_eq!(f.len(), 4, "a feature was reused across levels");
    }

    #[test]
    fn weights_steer_the_split_choice() {
        // Two candidate features; feature 0 classifies the heavy examples,
        // feature 1 the light ones. With skewed weights the tree must pick
        // feature 0 first.
        let data = FeatureMatrix::from_fn(4, 2, |e, j| {
            matches!((e, j), (0, 0) | (1, 0) | (0, 1) | (2, 1))
        });
        let labels = BitVec::from_bools([true, true, false, false]);
        let heavy = vec![10.0, 10.0, 10.0, 10.0];
        let tree = LevelWiseTree::train(&data, &labels, &heavy, &LevelTreeConfig::new(1));
        assert_eq!(tree.features(), &[0]);

        // Invert label alignment importance by zeroing the weight of the
        // examples feature 0 explains.
        let skewed = vec![0.0, 0.0, 10.0, 10.0];
        let tree = LevelWiseTree::train(&data, &labels, &skewed, &LevelTreeConfig::new(1));
        // Under these weights feature 1 perfectly separates (e2 has it set,
        // label 0 vs e3 unset, label 0 — both are class 0, so entropy is 0
        // for any feature; tie-break keeps the lowest index).
        assert_eq!(tree.features(), &[0]);
    }

    #[test]
    fn empty_leaf_policies_differ() {
        // Only 2 examples over 2 features: most leaves are unreached.
        let data = FeatureMatrix::from_fn(2, 3, |e, j| e == 0 && j < 2);
        let labels = BitVec::from_bools([false, false]);
        let w = vec![1.0; 2];
        let paper = LevelWiseTree::train(
            &data,
            &labels,
            &w,
            &LevelTreeConfig::new(2).with_empty_leaf(EmptyLeafPolicy::PaperOne),
        );
        let majority = LevelWiseTree::train(
            &data,
            &labels,
            &w,
            &LevelTreeConfig::new(2).with_empty_leaf(EmptyLeafPolicy::GlobalMajority),
        );
        // Paper policy marks unreached leaves 1, majority marks them 0.
        assert!(paper.table().count_ones() >= 2);
        assert_eq!(majority.table().count_ones(), 0);
    }

    #[test]
    fn predict_row_and_matrix_agree() {
        let data = exhaustive(6);
        let labels = BitVec::from_fn(64, |e| (e * 2654435761) & 8 != 0);
        let w = vec![1.0; 64];
        let tree = LevelWiseTree::train(&data, &labels, &w, &LevelTreeConfig::new(3));
        let batch = tree.predict_matrix(&data);
        for e in 0..64 {
            assert_eq!(batch.get(e), tree.predict_row(data.row(e)));
        }
    }

    #[test]
    fn lut_equivalence_exhaustive() {
        // The Figure 1 property: the trained tree IS its truth table. Walk
        // the tree semantics manually and compare against table eval.
        let data = exhaustive(5);
        let labels = BitVec::from_fn(32, |e| e % 3 == 0);
        let w = vec![1.0; 32];
        let tree = LevelWiseTree::train(&data, &labels, &w, &LevelTreeConfig::new(3));
        for e in 0..32 {
            let mut addr = 0usize;
            for (pos, &f) in tree.features().iter().enumerate() {
                if data.bit(e, f) {
                    addr |= 1 << pos;
                }
            }
            assert_eq!(tree.predict_row(data.row(e)), tree.table().eval(addr));
        }
    }

    #[test]
    #[should_panic(expected = "candidate features")]
    fn too_few_candidates_panics() {
        let data = exhaustive(2);
        let labels = BitVec::zeros(4);
        let w = vec![1.0; 4];
        LevelWiseTree::train(&data, &labels, &w, &LevelTreeConfig::new(3));
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_weights_panic() {
        let data = exhaustive(2);
        let labels = BitVec::zeros(4);
        LevelWiseTree::train(
            &data,
            &labels,
            &[1.0, -1.0, 1.0, 1.0],
            &LevelTreeConfig::new(1),
        );
    }

    #[test]
    fn from_parts_roundtrip() {
        let table = TruthTable::from_fn(2, |i| i == 3);
        let tree = LevelWiseTree::from_parts(vec![4, 7], table.clone());
        assert_eq!(tree.features(), &[4, 7]);
        assert_eq!(tree.table(), &table);
        let mut row = BitVec::zeros(8);
        row.set(4, true);
        row.set(7, true);
        assert!(tree.predict_row(&row));
    }

    #[test]
    fn entropy_never_increases_per_level() {
        let data = exhaustive(8);
        let labels = BitVec::from_fn(256, |e| (e.wrapping_mul(97) >> 3) & 1 == 1);
        let w = vec![1.0; 256];
        let (_, report) =
            LevelWiseTree::train_with_report(&data, &labels, &w, &LevelTreeConfig::new(5));
        for pair in report.level_entropies.windows(2) {
            assert!(
                pair[1] <= pair[0] + 1e-9,
                "conditional entropy must be non-increasing: {:?}",
                report.level_entropies
            );
        }
    }
}
