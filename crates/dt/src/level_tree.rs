//! The level-wise decision tree of PoET-BiN (Algorithm 1): RINC-0.
//!
//! Two trainers live here. [`LevelWiseTree::train`] is the production
//! popcount engine: it maintains the per-level node partition as packed
//! 64-bit masks and computes every `(node, branch, class)` histogram cell
//! of the entropy scan as a masked popcount (uniform weights), a bit-plane
//! sum of masked popcounts (integer weights, the boosting-by-resampling
//! case), or a node-bucketed sequential accumulation (arbitrary `f64`
//! weights). [`LevelWiseTree::train_scalar`] is the original one-bit-at-a-
//! time reference implementation; the engine is pinned against it by
//! randomized equivalence tests and the `train` benchmark.

use serde::{Deserialize, Serialize};

use poetbin_bits::{split_counts, BitVec, FeatureMatrix, TruthTable, WORD_BITS};

use crate::entropy::weighted_binary_entropy;
use crate::BitClassifier;

/// What label an unreached leaf (no training example lands in it) receives.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum EmptyLeafPolicy {
    /// Follow Algorithm 1 literally: `S0 <= S1` with both sums zero yields
    /// class 1.
    #[default]
    PaperOne,
    /// Fall back to the overall (weighted) majority class of the training
    /// set — usually slightly more accurate on sparse data.
    GlobalMajority,
}

/// Configuration for training a [`LevelWiseTree`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LevelTreeConfig {
    /// Number of tree levels = number of LUT inputs `P`.
    pub inputs: usize,
    /// Optional restriction of the candidate feature pool; `None` means all
    /// features of the dataset may be chosen.
    pub candidates: Option<Vec<usize>>,
    /// Label policy for leaves that receive no training examples.
    pub empty_leaf: EmptyLeafPolicy,
    /// Worker threads for the per-level candidate-feature scan; `0` (the
    /// default) uses all available cores. The trained tree is identical
    /// for every thread count.
    #[serde(default)]
    pub threads: usize,
}

impl LevelTreeConfig {
    /// Convenience constructor for a `P`-input tree over all features.
    pub fn new(inputs: usize) -> Self {
        LevelTreeConfig {
            inputs,
            candidates: None,
            empty_leaf: EmptyLeafPolicy::default(),
            threads: 0,
        }
    }

    /// Restricts candidate features (builder style).
    pub fn with_candidates(mut self, candidates: Vec<usize>) -> Self {
        self.candidates = Some(candidates);
        self
    }

    /// Sets the empty-leaf policy (builder style).
    pub fn with_empty_leaf(mut self, policy: EmptyLeafPolicy) -> Self {
        self.empty_leaf = policy;
        self
    }

    /// Sets the feature-scan thread count, `0` meaning all cores (builder
    /// style).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// Diagnostics produced while training a [`LevelWiseTree`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LevelTrainReport {
    /// Weighted conditional entropy after each level was added.
    pub level_entropies: Vec<f64>,
    /// Number of leaves that received no training example.
    pub empty_leaves: usize,
    /// Weighted training error of the finished tree.
    pub train_error: f64,
}

/// Tie-break margin of the greedy feature selection: a candidate must beat
/// the incumbent by more than this to replace it, so the lowest-index
/// feature wins exact ties deterministically.
const TIE_MARGIN: f64 = 1e-15;

/// Largest whole-number example weight the bit-plane popcount path accepts;
/// larger (or fractional) weights fall back to the exact `f64` path. At
/// this bound a weighted count stays exactly representable in the `u64`
/// plane accumulators for any realistic example count.
const MAX_INTEGER_WEIGHT: f64 = 4_294_967_296.0; // 2^32

/// How [`LevelWiseTree::train`] will exploit the weight vector.
enum WeightScheme {
    /// Every example carries the same weight: one popcount plane of all
    /// ones, scaled by the common weight.
    Uniform(f64),
    /// All weights are non-negative whole numbers (boosting by resampling
    /// hands the trainer bootstrap draw counts): one popcount plane per bit
    /// of the largest weight.
    Integer,
    /// Arbitrary non-negative weights: exact bucketed accumulation.
    General,
}

fn classify_weights(weights: &[f64]) -> WeightScheme {
    let Some(&w0) = weights.first() else {
        return WeightScheme::Uniform(0.0);
    };
    if weights.iter().all(|&w| w == w0) {
        return WeightScheme::Uniform(w0);
    }
    if weights
        .iter()
        .all(|&w| w.fract() == 0.0 && w <= MAX_INTEGER_WEIGHT)
    {
        return WeightScheme::Integer;
    }
    WeightScheme::General
}

/// The entropy objective of one candidate split, computed from the filled
/// `(child, class)` histogram exactly as the reference trainer does (same
/// summation order, so the two paths agree bit-for-bit on exact counts).
fn entropy_of_counts(counts: &[f64], new_nodes: usize) -> f64 {
    let total: f64 = counts.iter().sum();
    let mut level_entropy = 0.0;
    if total > 0.0 {
        for node in 0..new_nodes {
            let w0 = counts[node * 2];
            let w1 = counts[node * 2 + 1];
            level_entropy += (w0 + w1) / total * weighted_binary_entropy(w0, w1);
        }
    }
    level_entropy
}

/// Sequential fold reproducing the reference trainer's selection rule:
/// first candidate in pool order whose entropy undercuts the incumbent by
/// more than [`TIE_MARGIN`].
fn select_best(pool: &[usize], used: &[bool], entropies: &[f64]) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &feat) in pool.iter().enumerate() {
        if used[feat] {
            continue;
        }
        let e = entropies[i];
        let better = match best {
            None => true,
            Some((_, be)) => e < be - TIE_MARGIN,
        };
        if better {
            best = Some((feat, e));
        }
    }
    best
}

/// Number of feature-scan shards worth spawning for a `pool_len × n` scan.
fn scan_shards(pool_len: usize, n: usize, configured: usize) -> usize {
    // Below this much work the scope/spawn overhead outweighs the scan.
    if n < 512 || pool_len < 16 {
        return 1;
    }
    let hw = if configured > 0 {
        configured
    } else {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    };
    hw.min(pool_len.div_ceil(8)).max(1)
}

/// Runs `eval` over every pool candidate, writing one entropy per slot
/// (`f64::INFINITY` for already-used features), sharded across `shards`
/// threads. The output is independent of the shard count: shards own
/// disjoint contiguous chunks and the caller folds sequentially.
fn scan_features<F>(pool: &[usize], used: &[bool], entropies: &mut [f64], shards: usize, eval: F)
where
    F: Fn(usize) -> f64 + Sync,
{
    if shards <= 1 {
        for (slot, &feat) in entropies.iter_mut().zip(pool) {
            *slot = if used[feat] {
                f64::INFINITY
            } else {
                eval(feat)
            };
        }
        return;
    }
    let chunk = pool.len().div_ceil(shards);
    std::thread::scope(|scope| {
        for (pc, ec) in pool.chunks(chunk).zip(entropies.chunks_mut(chunk)) {
            let eval = &eval;
            scope.spawn(move || {
                for (slot, &feat) in ec.iter_mut().zip(pc) {
                    *slot = if used[feat] {
                        f64::INFINITY
                    } else {
                        eval(feat)
                    };
                }
            });
        }
    });
}

/// One node of the current level's partition, as a packed example mask.
struct MaskNode {
    /// Full-length mask words (tail bits zero, like every [`BitVec`]).
    words: Vec<u64>,
    /// Half-open word range outside which the mask is all zero.
    lo: usize,
    hi: usize,
}

impl MaskNode {
    fn from_words(words: Vec<u64>) -> MaskNode {
        let lo = words.iter().position(|&w| w != 0).unwrap_or(words.len());
        let hi = words.iter().rposition(|&w| w != 0).map_or(lo, |i| i + 1);
        MaskNode { words, lo, hi }
    }
}

/// Per-node, per-weight-plane state for one level of the popcount scan.
struct PlaneNode {
    /// `mask & plane_b` for each weight bit-plane `b`, restricted to the
    /// node's non-zero word range.
    planes: Vec<Vec<u64>>,
    /// First word of the restriction window.
    lo: usize,
    /// Weighted example count of the node.
    tot: u64,
    /// Weighted class-1 count of the node.
    pos: u64,
}

/// The paper's modified decision tree: `P` levels, one feature per level,
/// equivalent to a single `P`-input LUT (RINC-0, Figure 1).
///
/// The tree stores the `P` chosen feature indices and the complete
/// `2^P`-entry truth table of leaf labels. Prediction is a single table
/// look-up — exactly the O(1) leaf selection the paper highlights.
///
/// Address convention: the feature chosen at level `i` drives address bit
/// `i` of the truth table (`features()[0]` is the least-significant bit).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LevelWiseTree {
    features: Vec<usize>,
    table: TruthTable,
}

impl LevelWiseTree {
    /// Trains a tree with Algorithm 1 of the paper.
    ///
    /// Greedily selects, for each of the `config.inputs` levels, the unused
    /// feature that minimises the weighted entropy summed over all nodes of
    /// the new level; then labels every leaf with its weighted majority
    /// class (`S0 <= S1 → 1`).
    ///
    /// This is the word-parallel engine: with uniform or whole-number
    /// weights every histogram cell of the scan is a masked popcount over
    /// packed 64-example words, and arbitrary `f64` weights take a
    /// node-bucketed exact path. The result is identical to
    /// [`LevelWiseTree::train_scalar`]: bit-for-bit on unit-uniform and
    /// whole-number weights and on the exact-`f64` path. On *scaled*
    /// uniform weights (e.g. AdaBoost's `1/n`) the two trainers compute
    /// each histogram cell with different rounding (`count · w` here versus
    /// a folded sum of `w`s in the reference), so entropies agree only to
    /// within floating-point noise — candidates tied closer than that
    /// noise may in principle resolve differently, though the greedy
    /// objective value is the same.
    ///
    /// # Panics
    ///
    /// Panics if `labels`/`weights` lengths disagree with `data`, if any
    /// weight is negative, or if fewer candidate features exist than levels
    /// requested.
    pub fn train(
        data: &FeatureMatrix,
        labels: &BitVec,
        weights: &[f64],
        config: &LevelTreeConfig,
    ) -> Self {
        Self::train_with_report(data, labels, weights, config).0
    }

    /// Like [`LevelWiseTree::train`] but also returns training diagnostics.
    ///
    /// # Panics
    ///
    /// Same conditions as [`LevelWiseTree::train`].
    pub fn train_with_report(
        data: &FeatureMatrix,
        labels: &BitVec,
        weights: &[f64],
        config: &LevelTreeConfig,
    ) -> (Self, LevelTrainReport) {
        let pool = Self::validate(data, labels, weights, config);
        match classify_weights(weights) {
            WeightScheme::Uniform(w) => {
                let ones = [BitVec::ones(labels.len())];
                Self::train_popcount(data, labels, weights, &ones, w, pool, config)
            }
            WeightScheme::Integer => {
                let planes = weight_planes(weights);
                Self::train_popcount(data, labels, weights, &planes, 1.0, pool, config)
            }
            WeightScheme::General => Self::train_bucketed(data, labels, weights, pool, config),
        }
    }

    /// The original scalar reference trainer: walks `n × F × P` examples
    /// one bit at a time through the per-example inner loop.
    ///
    /// Kept as the semantic baseline the popcount engine is verified
    /// against (randomized equivalence tests in `tests/equivalence.rs`) and
    /// benchmarked against (`benches/train.rs`). Use
    /// [`LevelWiseTree::train`] everywhere else.
    ///
    /// # Panics
    ///
    /// Same conditions as [`LevelWiseTree::train`].
    pub fn train_scalar(
        data: &FeatureMatrix,
        labels: &BitVec,
        weights: &[f64],
        config: &LevelTreeConfig,
    ) -> Self {
        Self::train_scalar_with_report(data, labels, weights, config).0
    }

    /// Like [`LevelWiseTree::train_scalar`] but also returns diagnostics.
    ///
    /// # Panics
    ///
    /// Same conditions as [`LevelWiseTree::train`].
    pub fn train_scalar_with_report(
        data: &FeatureMatrix,
        labels: &BitVec,
        weights: &[f64],
        config: &LevelTreeConfig,
    ) -> (Self, LevelTrainReport) {
        let pool = Self::validate(data, labels, weights, config);
        let n = data.num_examples();
        let p = config.inputs;

        // node_of[e] is the index of the node example e currently sits in,
        // reading chosen features as big-endian address bits.
        let mut node_of = vec![0u32; n];
        let mut used = vec![false; data.num_features()];
        let mut features = Vec::with_capacity(p);
        let mut level_entropies = Vec::with_capacity(p);

        // Cache labels as a plain byte per example: the innermost loop below
        // runs n × F × P times and BitVec::get's shift/mask per label costs
        // measurably more than an indexed byte load.
        let label_u8: Vec<u8> = (0..n).map(|e| u8::from(labels.get(e))).collect();

        for level in 0..p {
            let new_nodes = 1usize << (level + 1);
            let mut best: Option<(usize, f64)> = None;

            for &feat in &pool {
                if used[feat] {
                    continue;
                }
                let col = data.feature(feat);
                // counts[(node << 1 | bit) * 2 + class] = total weight.
                let mut counts = vec![0.0f64; new_nodes * 2];
                for e in 0..n {
                    let bit = u32::from(col.get(e));
                    let child = ((node_of[e] << 1) | bit) as usize;
                    counts[child * 2 + label_u8[e] as usize] += weights[e];
                }
                let level_entropy = entropy_of_counts(&counts, new_nodes);
                let better = match best {
                    None => true,
                    Some((_, e)) => level_entropy < e - TIE_MARGIN,
                };
                if better {
                    best = Some((feat, level_entropy));
                }
            }

            let (feat, entropy) = best.expect("candidate pool exhausted");
            used[feat] = true;
            features.push(feat);
            level_entropies.push(entropy);
            let col = data.feature(feat);
            for (e, node) in node_of.iter_mut().enumerate() {
                *node = (*node << 1) | u32::from(col.get(e));
            }
        }

        // node_of holds big-endian addresses (level 0 = most significant);
        // refill leaf statistics in the little-endian convention used by the
        // truth table so predict() can call FeatureMatrix::address directly.
        let leaves = 1usize << p;
        let mut leaf_w = vec![0.0f64; leaves * 2];
        for e in 0..n {
            let be = node_of[e] as usize;
            let le = reverse_bits(be, p);
            leaf_w[le * 2 + label_u8[e] as usize] += weights[e];
        }

        Self::finish(
            data,
            labels,
            weights,
            config,
            features,
            level_entropies,
            leaf_w,
        )
    }

    /// Shared argument validation; returns the candidate pool.
    fn validate(
        data: &FeatureMatrix,
        labels: &BitVec,
        weights: &[f64],
        config: &LevelTreeConfig,
    ) -> Vec<usize> {
        let n = data.num_examples();
        assert_eq!(labels.len(), n, "label / data length mismatch");
        assert_eq!(weights.len(), n, "weight / data length mismatch");
        assert!(weights.iter().all(|w| *w >= 0.0), "negative example weight");
        let p = config.inputs;
        let pool: Vec<usize> = match &config.candidates {
            Some(c) => {
                for &j in c {
                    assert!(
                        j < data.num_features(),
                        "candidate feature {j} out of range"
                    );
                }
                c.clone()
            }
            None => (0..data.num_features()).collect(),
        };
        assert!(
            pool.len() >= p,
            "need at least {p} candidate features, have {}",
            pool.len()
        );
        pool
    }

    /// Shared tail of every trainer: builds the truth table from the
    /// little-endian leaf weight histogram and assembles the report.
    fn finish(
        data: &FeatureMatrix,
        labels: &BitVec,
        weights: &[f64],
        config: &LevelTreeConfig,
        features: Vec<usize>,
        level_entropies: Vec<f64>,
        leaf_w: Vec<f64>,
    ) -> (LevelWiseTree, LevelTrainReport) {
        let leaves = 1usize << config.inputs;
        let (mut total_w0, mut total_w1) = (0.0, 0.0);
        for leaf in 0..leaves {
            total_w0 += leaf_w[leaf * 2];
            total_w1 += leaf_w[leaf * 2 + 1];
        }
        let majority = total_w1 >= total_w0;

        let mut empty_leaves = 0;
        let table = TruthTable::from_fn(config.inputs, |leaf| {
            let w0 = leaf_w[leaf * 2];
            let w1 = leaf_w[leaf * 2 + 1];
            if w0 == 0.0 && w1 == 0.0 {
                empty_leaves += 1;
                match config.empty_leaf {
                    EmptyLeafPolicy::PaperOne => true,
                    EmptyLeafPolicy::GlobalMajority => majority,
                }
            } else {
                // Algorithm 1: S0 <= S1 → label 1.
                w0 <= w1
            }
        });

        let tree = LevelWiseTree { features, table };
        let train_error = tree.weighted_error(data, labels, weights);
        (
            tree,
            LevelTrainReport {
                level_entropies,
                empty_leaves,
                train_error,
            },
        )
    }

    /// The popcount engine: per-level node partitions as packed masks,
    /// every histogram cell a masked popcount summed over the weight
    /// bit-planes (`planes`; a single all-ones plane scaled by `scale`
    /// covers uniform weights, draw-count planes with `scale = 1` cover
    /// boosting by resampling).
    fn train_popcount(
        data: &FeatureMatrix,
        labels: &BitVec,
        weights: &[f64],
        planes: &[BitVec],
        scale: f64,
        pool: Vec<usize>,
        config: &LevelTreeConfig,
    ) -> (LevelWiseTree, LevelTrainReport) {
        let n = data.num_examples();
        let p = config.inputs;
        let label_words = labels.as_words();
        let mut used = vec![false; data.num_features()];
        let mut features = Vec::with_capacity(p);
        let mut level_entropies = Vec::with_capacity(p);
        let mut entropies = vec![f64::INFINITY; pool.len()];
        let shards = scan_shards(pool.len(), n, config.threads);

        // The partition starts as one node holding every example; node ids
        // are big-endian (level 0 = most significant address bit), matching
        // the reference trainer's `node_of` convention.
        let mut masks: Vec<MaskNode> =
            vec![MaskNode::from_words(BitVec::ones(n).as_words().to_vec())];

        for level in 0..p {
            let new_nodes = 1usize << (level + 1);

            // Fold the weight planes into each node once per level; the
            // whole feature scan then reuses the masked planes.
            let nodes: Vec<PlaneNode> = masks
                .iter()
                .map(|m| {
                    let window = &m.words[m.lo..m.hi];
                    let mut masked: Vec<Vec<u64>> = Vec::with_capacity(planes.len());
                    let mut tot = 0u64;
                    let mut pos = 0u64;
                    for (b, plane) in planes.iter().enumerate() {
                        let mp: Vec<u64> = window
                            .iter()
                            .zip(&plane.as_words()[m.lo..m.hi])
                            .map(|(&mw, &pw)| mw & pw)
                            .collect();
                        let (t, q) = split_counts(&mp, &mp, &label_words[m.lo..m.hi]);
                        tot += (t as u64) << b;
                        pos += (q as u64) << b;
                        masked.push(mp);
                    }
                    PlaneNode {
                        planes: masked,
                        lo: m.lo,
                        tot,
                        pos,
                    }
                })
                .collect();

            let eval = |feat: usize| {
                let col_words = data.feature(feat).as_words();
                let mut counts = vec![0.0f64; new_nodes * 2];
                for (m, node) in nodes.iter().enumerate() {
                    if node.tot == 0 {
                        continue;
                    }
                    let mut branch = 0u64; // weighted count taking the set branch
                    let mut branch_pos = 0u64; // … of which class 1
                    for (b, mp) in node.planes.iter().enumerate() {
                        let win = &col_words[node.lo..node.lo + mp.len()];
                        let lab = &label_words[node.lo..node.lo + mp.len()];
                        let (c1, c11) = split_counts(win, mp, lab);
                        branch += (c1 as u64) << b;
                        branch_pos += (c11 as u64) << b;
                    }
                    let child0 = 2 * m;
                    let child1 = 2 * m + 1;
                    counts[child1 * 2 + 1] = branch_pos as f64 * scale;
                    counts[child1 * 2] = (branch - branch_pos) as f64 * scale;
                    counts[child0 * 2 + 1] = (node.pos - branch_pos) as f64 * scale;
                    counts[child0 * 2] =
                        (node.tot - branch - (node.pos - branch_pos)) as f64 * scale;
                }
                entropy_of_counts(&counts, new_nodes)
            };
            scan_features(&pool, &used, &mut entropies, shards, eval);

            let (feat, entropy) =
                select_best(&pool, &used, &entropies).expect("candidate pool exhausted");
            used[feat] = true;
            features.push(feat);
            level_entropies.push(entropy);

            // Split every node on the chosen feature: child (2m | bit).
            let col_words = data.feature(feat).as_words();
            let mut next = Vec::with_capacity(new_nodes);
            for m in &masks {
                let mut zero = vec![0u64; m.words.len()];
                let mut one = vec![0u64; m.words.len()];
                for w in m.lo..m.hi {
                    let mw = m.words[w];
                    let cw = col_words[w];
                    one[w] = mw & cw;
                    zero[w] = mw & !cw;
                }
                next.push(MaskNode::from_words(zero));
                next.push(MaskNode::from_words(one));
            }
            masks = next;
        }

        // Leaf statistics from the final partition, converted to the truth
        // table's little-endian address convention.
        let leaves = 1usize << p;
        let mut leaf_w = vec![0.0f64; leaves * 2];
        for (be, m) in masks.iter().enumerate() {
            let window = &m.words[m.lo..m.hi];
            let mut tot = 0u64;
            let mut pos = 0u64;
            for (b, plane) in planes.iter().enumerate() {
                let (t, q) = split_counts(
                    window,
                    &plane.as_words()[m.lo..m.hi],
                    &label_words[m.lo..m.hi],
                );
                tot += (t as u64) << b;
                pos += (q as u64) << b;
            }
            let le = reverse_bits(be, p);
            leaf_w[le * 2] = (tot - pos) as f64 * scale;
            leaf_w[le * 2 + 1] = pos as f64 * scale;
        }

        Self::finish(
            data,
            labels,
            weights,
            config,
            features,
            level_entropies,
            leaf_w,
        )
    }

    /// The exact-`f64` engine: identical arithmetic to the scalar reference
    /// (same per-cell summation order), but with examples bucketed by node
    /// once per level so the inner loop accumulates into four register-
    /// resident cells per node instead of scattering across the histogram,
    /// and with the feature scan sharded across threads.
    fn train_bucketed(
        data: &FeatureMatrix,
        labels: &BitVec,
        weights: &[f64],
        pool: Vec<usize>,
        config: &LevelTreeConfig,
    ) -> (LevelWiseTree, LevelTrainReport) {
        let n = data.num_examples();
        let p = config.inputs;
        let mut node_of = vec![0u32; n];
        let mut used = vec![false; data.num_features()];
        let mut features = Vec::with_capacity(p);
        let mut level_entropies = Vec::with_capacity(p);
        let mut entropies = vec![f64::INFINITY; pool.len()];
        let shards = scan_shards(pool.len(), n, config.threads);
        let label_u8: Vec<u8> = (0..n).map(|e| u8::from(labels.get(e))).collect();

        for level in 0..p {
            let m = 1usize << level;
            let new_nodes = m << 1;

            // Stable counting sort of examples by node: within a bucket,
            // examples stay in ascending order, so per-cell accumulation
            // adds the same weights in the same order as the reference
            // trainer — the histograms agree bit-for-bit. Weights and
            // labels are gathered into bucket order once per level, so the
            // per-feature inner loop streams them sequentially instead of
            // gathering per feature.
            let mut offsets = vec![0usize; m + 1];
            for &nd in &node_of {
                offsets[nd as usize + 1] += 1;
            }
            for i in 0..m {
                offsets[i + 1] += offsets[i];
            }
            let mut cursor = offsets.clone();
            let mut order = vec![0u32; n];
            for (e, &nd) in node_of.iter().enumerate() {
                order[cursor[nd as usize]] = e as u32;
                cursor[nd as usize] += 1;
            }
            let w_sorted: Vec<f64> = order.iter().map(|&e| weights[e as usize]).collect();
            let lab_sorted: Vec<u8> = order.iter().map(|&e| label_u8[e as usize]).collect();

            let eval = |feat: usize| {
                let col_words = data.feature(feat).as_words();
                let mut counts = vec![0.0f64; new_nodes * 2];
                for node in 0..m {
                    let mut acc = [0.0f64; 4]; // [bit << 1 | class]
                    for i in offsets[node]..offsets[node + 1] {
                        let e = order[i] as usize;
                        let bit = (col_words[e / WORD_BITS] >> (e % WORD_BITS)) & 1;
                        acc[(bit as usize) << 1 | lab_sorted[i] as usize] += w_sorted[i];
                    }
                    counts[4 * node] = acc[0];
                    counts[4 * node + 1] = acc[1];
                    counts[4 * node + 2] = acc[2];
                    counts[4 * node + 3] = acc[3];
                }
                entropy_of_counts(&counts, new_nodes)
            };
            scan_features(&pool, &used, &mut entropies, shards, eval);

            let (feat, entropy) =
                select_best(&pool, &used, &entropies).expect("candidate pool exhausted");
            used[feat] = true;
            features.push(feat);
            level_entropies.push(entropy);
            let col_words = data.feature(feat).as_words();
            for (e, node) in node_of.iter_mut().enumerate() {
                let bit = (col_words[e / WORD_BITS] >> (e % WORD_BITS)) & 1;
                *node = (*node << 1) | bit as u32;
            }
        }

        let leaves = 1usize << p;
        let mut leaf_w = vec![0.0f64; leaves * 2];
        for e in 0..n {
            let be = node_of[e] as usize;
            let le = reverse_bits(be, p);
            leaf_w[le * 2 + label_u8[e] as usize] += weights[e];
        }

        Self::finish(
            data,
            labels,
            weights,
            config,
            features,
            level_entropies,
            leaf_w,
        )
    }

    /// Builds a tree directly from chosen features and a truth table,
    /// bypassing training (used by deserialisation and tests).
    ///
    /// # Panics
    ///
    /// Panics if `table.inputs() != features.len()`.
    pub fn from_parts(features: Vec<usize>, table: TruthTable) -> Self {
        assert_eq!(
            table.inputs(),
            features.len(),
            "truth table arity must match feature count"
        );
        LevelWiseTree { features, table }
    }

    /// The feature selected at each level (level 0 first; drives address
    /// bit 0).
    pub fn features(&self) -> &[usize] {
        &self.features
    }

    /// The LUT contents: leaf labels for every feature combination.
    pub fn table(&self) -> &TruthTable {
        &self.table
    }

    /// Number of LUT inputs `P`.
    pub fn inputs(&self) -> usize {
        self.features.len()
    }

    /// Predicts every example word-parallel: the chosen feature columns
    /// are fed 64 examples at a time through the shared Shannon-recursion
    /// kernel [`TruthTable::eval_words`], exactly as the FPGA simulator
    /// and the `poetbin-engine` batch plan evaluate a LUT.
    pub fn predict_matrix(&self, data: &FeatureMatrix) -> BitVec {
        let n = data.num_examples();
        let cols: Vec<&[u64]> = self
            .features
            .iter()
            .map(|&f| data.feature(f).as_words())
            .collect();
        let mut ops = vec![0u64; cols.len()];
        let mut out = BitVec::zeros(n);
        for (w, word) in out.as_words_mut().iter_mut().enumerate() {
            for (op, col) in ops.iter_mut().zip(&cols) {
                *op = col[w];
            }
            *word = self.table.eval_words(&ops);
        }
        out.mask_tail();
        out
    }
}

/// Decomposes whole-number weights into bit-plane [`BitVec`]s: bit `e` of
/// plane `b` is bit `b` of `weights[e] as u64`.
fn weight_planes(weights: &[f64]) -> Vec<BitVec> {
    let max_w = weights.iter().fold(0.0f64, |a, &b| a.max(b)) as u64;
    let bits = (u64::BITS - max_w.leading_zeros()).max(1) as usize;
    (0..bits)
        .map(|b| BitVec::from_fn(weights.len(), |e| (weights[e] as u64 >> b) & 1 == 1))
        .collect()
}

/// Reconstructs the per-example weight vector from its bit-plane
/// decomposition (inverse of [`weight_planes`], scaled; test-only).
#[cfg(test)]
fn plane_weights(planes: &[BitVec], scale: f64, n: usize) -> Vec<f64> {
    let mut weights = vec![0u64; n];
    for (b, plane) in planes.iter().enumerate() {
        for e in plane.iter_ones() {
            weights[e] += 1u64 << b;
        }
    }
    weights.into_iter().map(|w| w as f64 * scale).collect()
}

impl BitClassifier for LevelWiseTree {
    fn predict_row(&self, row: &BitVec) -> bool {
        let mut addr = 0usize;
        for (pos, &j) in self.features.iter().enumerate() {
            if row.get(j) {
                addr |= 1 << pos;
            }
        }
        self.table.eval(addr)
    }

    fn predict_batch(&self, data: &FeatureMatrix) -> BitVec {
        self.predict_matrix(data)
    }
}

/// Reverses the `width` lowest bits of `value`.
fn reverse_bits(value: usize, width: usize) -> usize {
    let mut out = 0usize;
    for i in 0..width {
        if (value >> i) & 1 == 1 {
            out |= 1 << (width - 1 - i);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustive dataset over `f` features: example `e` has feature `j`
    /// set when bit `j` of `e` is one.
    fn exhaustive(f: usize) -> FeatureMatrix {
        FeatureMatrix::from_fn(1 << f, f, |e, j| (e >> j) & 1 == 1)
    }

    #[test]
    fn reverse_bits_works() {
        assert_eq!(reverse_bits(0b001, 3), 0b100);
        assert_eq!(reverse_bits(0b110, 3), 0b011);
        assert_eq!(reverse_bits(0b1, 1), 0b1);
        assert_eq!(reverse_bits(0, 4), 0);
    }

    #[test]
    fn learns_single_relevant_feature() {
        let data = exhaustive(5);
        let labels = BitVec::from_fn(32, |e| (e >> 3) & 1 == 1);
        let w = vec![1.0; 32];
        let tree = LevelWiseTree::train(&data, &labels, &w, &LevelTreeConfig::new(1));
        assert_eq!(tree.features(), &[3]);
        assert_eq!(tree.accuracy(&data, &labels), 1.0);
    }

    #[test]
    fn learns_xor_exactly_with_two_levels() {
        // XOR makes every single feature look equally useless (entropy 1),
        // so greedy selection falls back to the deterministic lowest-index
        // tie-break. With the XOR pair at indices 0 and 1, two levels
        // recover the function exactly — the Figure 1 capacity argument.
        let data = exhaustive(6);
        let labels = BitVec::from_fn(64, |e| (e ^ (e >> 1)) & 1 == 1);
        let w = vec![1.0; 64];
        let (tree, report) =
            LevelWiseTree::train_with_report(&data, &labels, &w, &LevelTreeConfig::new(2));
        let mut chosen = tree.features().to_vec();
        chosen.sort_unstable();
        assert_eq!(chosen, vec![0, 1]);
        assert_eq!(tree.accuracy(&data, &labels), 1.0);
        assert_eq!(report.train_error, 0.0);
        assert_eq!(*report.level_entropies.last().unwrap(), 0.0);
        assert_eq!(report.empty_leaves, 0);
    }

    #[test]
    fn xor_defeats_single_level_but_not_two() {
        // Entropy of any single feature on XOR labels is 1 bit: level-wise
        // training still recovers it once paired, demonstrating the capacity
        // argument of §2.1.1.
        let data = exhaustive(4);
        let labels = BitVec::from_fn(16, |e| ((e) ^ (e >> 1)) & 1 == 1);
        let w = vec![1.0; 16];
        let one = LevelWiseTree::train(&data, &labels, &w, &LevelTreeConfig::new(1));
        assert!(one.accuracy(&data, &labels) <= 0.5 + 1e-9);
        let two = LevelWiseTree::train(&data, &labels, &w, &LevelTreeConfig::new(2));
        assert_eq!(two.accuracy(&data, &labels), 1.0);
    }

    #[test]
    fn respects_candidate_restriction() {
        let data = exhaustive(5);
        // Label is feature 0, but feature 0 is excluded from the pool.
        let labels = BitVec::from_fn(32, |e| e & 1 == 1);
        let w = vec![1.0; 32];
        let cfg = LevelTreeConfig::new(2).with_candidates(vec![1, 2, 3, 4]);
        let tree = LevelWiseTree::train(&data, &labels, &w, &cfg);
        assert!(!tree.features().contains(&0));
    }

    #[test]
    fn features_are_distinct() {
        let data = exhaustive(6);
        let labels = BitVec::from_fn(64, |e| (e.count_ones() % 2) == 1);
        let w = vec![1.0; 64];
        let tree = LevelWiseTree::train(&data, &labels, &w, &LevelTreeConfig::new(4));
        let mut f = tree.features().to_vec();
        f.sort_unstable();
        f.dedup();
        assert_eq!(f.len(), 4, "a feature was reused across levels");
    }

    #[test]
    fn weights_steer_the_split_choice() {
        // Four examples, two candidate features. Feature 0's set branch
        // isolates (pure) example 0; feature 1's set branch isolates
        // example 2; the remaining three examples are mixed either way.
        // Under uniform weights the two splits produce *identical*
        // histograms, so the deterministic tie-break keeps feature 0.
        let data = FeatureMatrix::from_fn(4, 2, |e, j| matches!((e, j), (0, 0) | (2, 1)));
        let labels = BitVec::from_bools([true, false, true, false]);
        let uniform = vec![1.0; 4];
        let tree = LevelWiseTree::train(&data, &labels, &uniform, &LevelTreeConfig::new(1));
        assert_eq!(tree.features(), &[0], "uniform weights tie-break to f0");

        // Up-weighting examples 2 and 3 makes feature 1's split strictly
        // better (its mixed branch is then the light one): the trainer must
        // flip to feature 1. A weight-blind trainer would still tie-break
        // to feature 0 — this is the regression the test guards.
        let skewed = vec![1.0, 1.0, 4.0, 4.0];
        let tree = LevelWiseTree::train(&data, &labels, &skewed, &LevelTreeConfig::new(1));
        assert_eq!(tree.features(), &[1], "skewed weights must flip to f1");
        // And the mirrored skew favours feature 0 strictly.
        let mirrored = vec![4.0, 4.0, 1.0, 1.0];
        let tree = LevelWiseTree::train(&data, &labels, &mirrored, &LevelTreeConfig::new(1));
        assert_eq!(tree.features(), &[0]);
    }

    #[test]
    fn empty_leaf_policies_differ() {
        // Only 2 examples over 2 features: most leaves are unreached.
        let data = FeatureMatrix::from_fn(2, 3, |e, j| e == 0 && j < 2);
        let labels = BitVec::from_bools([false, false]);
        let w = vec![1.0; 2];
        let paper = LevelWiseTree::train(
            &data,
            &labels,
            &w,
            &LevelTreeConfig::new(2).with_empty_leaf(EmptyLeafPolicy::PaperOne),
        );
        let majority = LevelWiseTree::train(
            &data,
            &labels,
            &w,
            &LevelTreeConfig::new(2).with_empty_leaf(EmptyLeafPolicy::GlobalMajority),
        );
        // Paper policy marks unreached leaves 1, majority marks them 0.
        assert!(paper.table().count_ones() >= 2);
        assert_eq!(majority.table().count_ones(), 0);
    }

    #[test]
    fn predict_row_and_matrix_agree() {
        let data = exhaustive(6);
        let labels = BitVec::from_fn(64, |e| (e * 2654435761) & 8 != 0);
        let w = vec![1.0; 64];
        let tree = LevelWiseTree::train(&data, &labels, &w, &LevelTreeConfig::new(3));
        let batch = tree.predict_matrix(&data);
        for e in 0..64 {
            assert_eq!(batch.get(e), tree.predict_row(data.row(e)));
        }
    }

    #[test]
    fn lut_equivalence_exhaustive() {
        // The Figure 1 property: the trained tree IS its truth table. Walk
        // the tree semantics manually and compare against table eval.
        let data = exhaustive(5);
        let labels = BitVec::from_fn(32, |e| e % 3 == 0);
        let w = vec![1.0; 32];
        let tree = LevelWiseTree::train(&data, &labels, &w, &LevelTreeConfig::new(3));
        for e in 0..32 {
            let mut addr = 0usize;
            for (pos, &f) in tree.features().iter().enumerate() {
                if data.bit(e, f) {
                    addr |= 1 << pos;
                }
            }
            assert_eq!(tree.predict_row(data.row(e)), tree.table().eval(addr));
        }
    }

    #[test]
    #[should_panic(expected = "candidate features")]
    fn too_few_candidates_panics() {
        let data = exhaustive(2);
        let labels = BitVec::zeros(4);
        let w = vec![1.0; 4];
        LevelWiseTree::train(&data, &labels, &w, &LevelTreeConfig::new(3));
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_weights_panic() {
        let data = exhaustive(2);
        let labels = BitVec::zeros(4);
        LevelWiseTree::train(
            &data,
            &labels,
            &[1.0, -1.0, 1.0, 1.0],
            &LevelTreeConfig::new(1),
        );
    }

    #[test]
    fn from_parts_roundtrip() {
        let table = TruthTable::from_fn(2, |i| i == 3);
        let tree = LevelWiseTree::from_parts(vec![4, 7], table.clone());
        assert_eq!(tree.features(), &[4, 7]);
        assert_eq!(tree.table(), &table);
        let mut row = BitVec::zeros(8);
        row.set(4, true);
        row.set(7, true);
        assert!(tree.predict_row(&row));
    }

    #[test]
    fn entropy_never_increases_per_level() {
        let data = exhaustive(8);
        let labels = BitVec::from_fn(256, |e| (e.wrapping_mul(97) >> 3) & 1 == 1);
        let w = vec![1.0; 256];
        let (_, report) =
            LevelWiseTree::train_with_report(&data, &labels, &w, &LevelTreeConfig::new(5));
        for pair in report.level_entropies.windows(2) {
            assert!(
                pair[1] <= pair[0] + 1e-9,
                "conditional entropy must be non-increasing: {:?}",
                report.level_entropies
            );
        }
    }

    #[test]
    fn weight_scheme_detection() {
        assert!(matches!(classify_weights(&[]), WeightScheme::Uniform(_)));
        assert!(matches!(
            classify_weights(&[0.5, 0.5, 0.5]),
            WeightScheme::Uniform(_)
        ));
        assert!(matches!(
            classify_weights(&[1.0, 0.0, 3.0]),
            WeightScheme::Integer
        ));
        assert!(matches!(
            classify_weights(&[1.0, 0.25]),
            WeightScheme::General
        ));
        assert!(matches!(
            classify_weights(&[1.0, MAX_INTEGER_WEIGHT * 2.0]),
            WeightScheme::General
        ));
    }

    #[test]
    fn weight_planes_roundtrip() {
        let w = [0.0, 1.0, 5.0, 13.0, 64.0];
        let planes = weight_planes(&w);
        let back = plane_weights(&planes, 1.0, w.len());
        assert_eq!(back, w);
        // Scaled reconstruction.
        let scaled = plane_weights(&planes, 0.5, w.len());
        assert_eq!(scaled, [0.0, 0.5, 2.5, 6.5, 32.0]);
    }

    #[test]
    fn popcount_engine_matches_scalar_on_unit_weights() {
        let data = exhaustive(7);
        let labels = BitVec::from_fn(128, |e| (e.wrapping_mul(2654435761) >> 5) & 3 == 0);
        let w = vec![1.0; 128];
        let cfg = LevelTreeConfig::new(4);
        let (fast, fr) = LevelWiseTree::train_with_report(&data, &labels, &w, &cfg);
        let (slow, sr) = LevelWiseTree::train_scalar_with_report(&data, &labels, &w, &cfg);
        assert_eq!(fast, slow);
        assert_eq!(fr.level_entropies, sr.level_entropies);
        assert_eq!(fr.empty_leaves, sr.empty_leaves);
        assert_eq!(fr.train_error, sr.train_error);
    }

    #[test]
    fn integer_weights_match_scalar() {
        let data = exhaustive(6);
        let labels = BitVec::from_fn(64, |e| (e.wrapping_mul(97) >> 2) & 1 == 1);
        // Resample-style draw counts, including zeros.
        let w: Vec<f64> = (0..64).map(|e| f64::from((e * 7 % 5) as u32)).collect();
        let cfg = LevelTreeConfig::new(3);
        let fast = LevelWiseTree::train(&data, &labels, &w, &cfg);
        let slow = LevelWiseTree::train_scalar(&data, &labels, &w, &cfg);
        assert_eq!(fast, slow);
    }

    #[test]
    fn thread_count_does_not_change_the_tree() {
        let data = FeatureMatrix::from_fn(600, 40, |e, j| {
            (e.wrapping_mul(2654435761)
                .wrapping_add(j.wrapping_mul(40503))
                >> 6)
                & 1
                == 1
        });
        let labels = BitVec::from_fn(600, |e| (e.wrapping_mul(0x9E3779B9) >> 9) & 1 == 1);
        let w: Vec<f64> = (0..600).map(|e| 0.1 + (e % 7) as f64 * 0.3).collect();
        let cfg1 = LevelTreeConfig::new(4).with_threads(1);
        let cfg4 = LevelTreeConfig::new(4).with_threads(4);
        let (a, ra) = LevelWiseTree::train_with_report(&data, &labels, &w, &cfg1);
        let (b, rb) = LevelWiseTree::train_with_report(&data, &labels, &w, &cfg4);
        assert_eq!(a, b);
        assert_eq!(ra.level_entropies, rb.level_entropies);
    }

    #[test]
    fn all_zero_weights_match_scalar() {
        // Degenerate but allowed: every leaf is weight-empty, the policy
        // decides everything, and both engines must agree.
        let data = exhaustive(4);
        let labels = BitVec::from_fn(16, |e| e % 2 == 1);
        let w = vec![0.0; 16];
        let cfg = LevelTreeConfig::new(2);
        let (fast, fr) = LevelWiseTree::train_with_report(&data, &labels, &w, &cfg);
        let (slow, sr) = LevelWiseTree::train_scalar_with_report(&data, &labels, &w, &cfg);
        assert_eq!(fast, slow);
        assert_eq!(fr.empty_leaves, sr.empty_leaves);
    }
}
