//! Impurity measures for weighted binary splits.

/// Shannon entropy (base 2) of a weighted binary class distribution.
///
/// `w0` and `w1` are the total example weights of class 0 and class 1 in a
/// node. Returns 0 for pure or empty nodes and 1 for a perfectly balanced
/// node.
///
/// # Example
///
/// ```
/// use poetbin_dt::weighted_binary_entropy;
///
/// assert_eq!(weighted_binary_entropy(1.0, 0.0), 0.0);
/// assert!((weighted_binary_entropy(0.5, 0.5) - 1.0).abs() < 1e-12);
/// ```
pub fn weighted_binary_entropy(w0: f64, w1: f64) -> f64 {
    debug_assert!(w0 >= 0.0 && w1 >= 0.0, "negative class weight");
    let total = w0 + w1;
    if total <= 0.0 {
        return 0.0;
    }
    let mut h = 0.0;
    for w in [w0, w1] {
        if w > 0.0 {
            let p = w / total;
            h -= p * p.log2();
        }
    }
    h
}

/// Gini impurity of a weighted binary class distribution.
///
/// Used by the classic node-wise tree when configured with
/// [`SplitCriterion::Gini`](crate::SplitCriterion); ranges over `[0, 0.5]`.
///
/// # Example
///
/// ```
/// use poetbin_dt::gini_impurity;
///
/// assert_eq!(gini_impurity(3.0, 0.0), 0.0);
/// assert!((gini_impurity(1.0, 1.0) - 0.5).abs() < 1e-12);
/// ```
pub fn gini_impurity(w0: f64, w1: f64) -> f64 {
    debug_assert!(w0 >= 0.0 && w1 >= 0.0, "negative class weight");
    let total = w0 + w1;
    if total <= 0.0 {
        return 0.0;
    }
    let p0 = w0 / total;
    let p1 = w1 / total;
    1.0 - p0 * p0 - p1 * p1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_extremes() {
        assert_eq!(weighted_binary_entropy(0.0, 0.0), 0.0);
        assert_eq!(weighted_binary_entropy(5.0, 0.0), 0.0);
        assert_eq!(weighted_binary_entropy(0.0, 2.0), 0.0);
        assert!((weighted_binary_entropy(3.0, 3.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn entropy_is_symmetric_and_scale_invariant() {
        let a = weighted_binary_entropy(1.0, 3.0);
        let b = weighted_binary_entropy(3.0, 1.0);
        let c = weighted_binary_entropy(10.0, 30.0);
        assert!((a - b).abs() < 1e-12);
        assert!((a - c).abs() < 1e-12);
    }

    #[test]
    fn entropy_monotone_towards_balance() {
        let mut prev = 0.0;
        for k in 1..=10 {
            let h = weighted_binary_entropy(k as f64, 10.0);
            assert!(h >= prev, "entropy should rise towards balance");
            prev = h;
        }
    }

    #[test]
    fn gini_extremes() {
        assert_eq!(gini_impurity(0.0, 0.0), 0.0);
        assert_eq!(gini_impurity(4.0, 0.0), 0.0);
        assert!((gini_impurity(2.0, 2.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn gini_bounded_by_entropy_shape() {
        for k in 0..=20 {
            let w1 = k as f64 / 20.0;
            let g = gini_impurity(1.0 - w1, w1);
            assert!((0.0..=0.5 + 1e-12).contains(&g));
        }
    }
}
