//! A conventional node-wise decision tree (CART / ID3 style).
//!
//! This is the "original DT algorithm (Quinlan, 1986)" the paper contrasts
//! with: each node independently picks its best feature, and growth stops on
//! a depth or node budget. Because different branches pick different
//! features, a depth-`d` tree can touch up to `2^d - 1` distinct inputs —
//! far more than a LUT port supplies — or far fewer, under-filling the LUT.
//! The POLYBiNN baseline builds on these trees.

use serde::{Deserialize, Serialize};

use poetbin_bits::{BitVec, FeatureMatrix};

use crate::entropy::{gini_impurity, weighted_binary_entropy};
use crate::BitClassifier;

/// Split quality measure for [`ClassicTree`] training.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SplitCriterion {
    /// Shannon information gain (ID3/C4.5 style).
    #[default]
    Entropy,
    /// Gini impurity decrease (CART style).
    Gini,
}

impl SplitCriterion {
    fn impurity(self, w0: f64, w1: f64) -> f64 {
        match self {
            SplitCriterion::Entropy => weighted_binary_entropy(w0, w1),
            SplitCriterion::Gini => gini_impurity(w0, w1),
        }
    }
}

/// Configuration for training a [`ClassicTree`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClassicTreeConfig {
    /// Maximum tree depth (root = depth 0). A depth-`d` tree answers in at
    /// most `d` feature reads per example.
    pub max_depth: usize,
    /// Maximum number of internal nodes, the paper's other classic limit.
    pub max_nodes: usize,
    /// Minimum total example weight required to attempt a split.
    pub min_split_weight: f64,
    /// Split quality measure.
    pub criterion: SplitCriterion,
}

impl ClassicTreeConfig {
    /// A depth-limited tree with an effectively unlimited node budget.
    pub fn with_depth(max_depth: usize) -> Self {
        ClassicTreeConfig {
            max_depth,
            max_nodes: usize::MAX,
            min_split_weight: 0.0,
            criterion: SplitCriterion::default(),
        }
    }

    /// A node-limited tree with an effectively unlimited depth budget.
    pub fn with_nodes(max_nodes: usize) -> Self {
        ClassicTreeConfig {
            max_depth: usize::MAX,
            max_nodes,
            min_split_weight: 0.0,
            criterion: SplitCriterion::default(),
        }
    }

    /// Sets the split criterion (builder style).
    pub fn with_criterion(mut self, criterion: SplitCriterion) -> Self {
        self.criterion = criterion;
        self
    }
}

#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
enum Node {
    /// Internal node: test `feature`; 0 → `lo`, 1 → `hi` (indices into the
    /// node arena).
    Split {
        feature: usize,
        lo: usize,
        hi: usize,
    },
    /// Leaf with a fixed class.
    Leaf { label: bool },
}

/// A conventional greedy binary decision tree over binary features.
///
/// # Example
///
/// ```
/// use poetbin_bits::{BitVec, FeatureMatrix};
/// use poetbin_dt::{BitClassifier, ClassicTree, ClassicTreeConfig};
///
/// let data = FeatureMatrix::from_fn(8, 3, |e, j| (e >> j) & 1 == 1);
/// let labels = BitVec::from_fn(8, |e| e & 1 == 1);
/// let tree = ClassicTree::train(&data, &labels, &[1.0; 8],
///                               &ClassicTreeConfig::with_depth(2));
/// assert_eq!(tree.accuracy(&data, &labels), 1.0);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClassicTree {
    nodes: Vec<Node>,
    root: usize,
    depth: usize,
}

impl ClassicTree {
    /// Trains a tree by greedy recursive partitioning.
    ///
    /// # Panics
    ///
    /// Panics if `labels`/`weights` lengths disagree with `data` or any
    /// weight is negative.
    pub fn train(
        data: &FeatureMatrix,
        labels: &BitVec,
        weights: &[f64],
        config: &ClassicTreeConfig,
    ) -> Self {
        let n = data.num_examples();
        assert_eq!(labels.len(), n, "label / data length mismatch");
        assert_eq!(weights.len(), n, "weight / data length mismatch");
        assert!(weights.iter().all(|w| *w >= 0.0), "negative example weight");

        let mut builder = Builder {
            data,
            labels,
            weights,
            config,
            nodes: Vec::new(),
            splits_used: 0,
        };
        let everyone: Vec<usize> = (0..n).collect();
        let root = builder.grow(&everyone, 0);
        let depth = depth_of(&builder.nodes, root);
        ClassicTree {
            nodes: builder.nodes,
            root,
            depth,
        }
    }

    /// Actual depth of the trained tree.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Number of internal (split) nodes.
    pub fn num_splits(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Split { .. }))
            .count()
    }

    /// Number of leaves.
    pub fn num_leaves(&self) -> usize {
        self.nodes.len() - self.num_splits()
    }

    /// The set of distinct features the tree reads, ascending.
    ///
    /// The paper's LUT-utilisation argument: a classic tree's distinct input
    /// count is not controlled, so it rarely equals the LUT fan-in `P`.
    pub fn distinct_features(&self) -> Vec<usize> {
        let mut feats: Vec<usize> = self
            .nodes
            .iter()
            .filter_map(|n| match n {
                Node::Split { feature, .. } => Some(*feature),
                Node::Leaf { .. } => None,
            })
            .collect();
        feats.sort_unstable();
        feats.dedup();
        feats
    }
}

impl BitClassifier for ClassicTree {
    fn predict_row(&self, row: &BitVec) -> bool {
        let mut at = self.root;
        loop {
            match &self.nodes[at] {
                Node::Leaf { label } => return *label,
                Node::Split { feature, lo, hi } => {
                    at = if row.get(*feature) { *hi } else { *lo };
                }
            }
        }
    }
}

struct Builder<'a> {
    data: &'a FeatureMatrix,
    labels: &'a BitVec,
    weights: &'a [f64],
    config: &'a ClassicTreeConfig,
    nodes: Vec<Node>,
    splits_used: usize,
}

impl Builder<'_> {
    fn class_weights(&self, members: &[usize]) -> (f64, f64) {
        let mut w = (0.0, 0.0);
        for &e in members {
            if self.labels.get(e) {
                w.1 += self.weights[e];
            } else {
                w.0 += self.weights[e];
            }
        }
        w
    }

    fn leaf(&mut self, members: &[usize]) -> usize {
        let (w0, w1) = self.class_weights(members);
        self.nodes.push(Node::Leaf { label: w0 <= w1 });
        self.nodes.len() - 1
    }

    fn grow(&mut self, members: &[usize], depth: usize) -> usize {
        let (w0, w1) = self.class_weights(members);
        let total = w0 + w1;
        let pure = w0 == 0.0 || w1 == 0.0;
        if depth >= self.config.max_depth
            || self.splits_used >= self.config.max_nodes
            || total <= self.config.min_split_weight
            || pure
            || members.len() <= 1
        {
            return self.leaf(members);
        }

        let parent_impurity = self.config.criterion.impurity(w0, w1);
        let mut best: Option<(usize, f64)> = None;
        for feature in 0..self.data.num_features() {
            let col = self.data.feature(feature);
            let (mut l0, mut l1, mut h0, mut h1) = (0.0, 0.0, 0.0, 0.0);
            for &e in members {
                let w = self.weights[e];
                match (col.get(e), self.labels.get(e)) {
                    (false, false) => l0 += w,
                    (false, true) => l1 += w,
                    (true, false) => h0 += w,
                    (true, true) => h1 += w,
                }
            }
            if l0 + l1 == 0.0 || h0 + h1 == 0.0 {
                continue; // split does not separate anything
            }
            let child = ((l0 + l1) * self.config.criterion.impurity(l0, l1)
                + (h0 + h1) * self.config.criterion.impurity(h0, h1))
                / total;
            let gain = parent_impurity - child;
            let better = match best {
                None => gain > 1e-12,
                Some((_, g)) => gain > g + 1e-15,
            };
            if better {
                best = Some((feature, gain));
            }
        }

        let Some((feature, _)) = best else {
            return self.leaf(members);
        };

        self.splits_used += 1;
        let col = self.data.feature(feature);
        let (lo_members, hi_members): (Vec<usize>, Vec<usize>) =
            members.iter().partition(|&&e| !col.get(e));

        // Reserve this node's slot before recursing so indices stay stable.
        let slot = self.nodes.len();
        self.nodes.push(Node::Leaf { label: false });
        let lo = self.grow(&lo_members, depth + 1);
        let hi = self.grow(&hi_members, depth + 1);
        self.nodes[slot] = Node::Split { feature, lo, hi };
        slot
    }
}

fn depth_of(nodes: &[Node], at: usize) -> usize {
    match &nodes[at] {
        Node::Leaf { .. } => 0,
        Node::Split { lo, hi, .. } => 1 + depth_of(nodes, *lo).max(depth_of(nodes, *hi)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exhaustive(f: usize) -> FeatureMatrix {
        FeatureMatrix::from_fn(1 << f, f, |e, j| (e >> j) & 1 == 1)
    }

    #[test]
    fn learns_single_feature() {
        let data = exhaustive(4);
        let labels = BitVec::from_fn(16, |e| (e >> 2) & 1 == 1);
        let tree = ClassicTree::train(
            &data,
            &labels,
            &[1.0; 16],
            &ClassicTreeConfig::with_depth(3),
        );
        assert_eq!(tree.accuracy(&data, &labels), 1.0);
        assert_eq!(tree.distinct_features(), vec![2]);
        assert_eq!(tree.depth(), 1);
    }

    #[test]
    fn learns_and_function() {
        let data = exhaustive(3);
        let labels = BitVec::from_fn(8, |e| e & 0b11 == 0b11);
        let tree = ClassicTree::train(&data, &labels, &[1.0; 8], &ClassicTreeConfig::with_depth(4));
        assert_eq!(tree.accuracy(&data, &labels), 1.0);
        assert!(tree.depth() <= 2);
    }

    #[test]
    fn depth_limit_is_respected() {
        let data = exhaustive(6);
        let labels = BitVec::from_fn(64, |e| (e.count_ones() % 2) == 1); // parity: hard
        let tree = ClassicTree::train(
            &data,
            &labels,
            &[1.0; 64],
            &ClassicTreeConfig::with_depth(3),
        );
        assert!(tree.depth() <= 3);
    }

    #[test]
    fn node_limit_is_respected() {
        let data = exhaustive(6);
        let labels = BitVec::from_fn(64, |e| (e.wrapping_mul(37) >> 2) & 1 == 1);
        let tree = ClassicTree::train(
            &data,
            &labels,
            &[1.0; 64],
            &ClassicTreeConfig::with_nodes(5),
        );
        assert!(tree.num_splits() <= 5, "got {} splits", tree.num_splits());
    }

    #[test]
    fn pure_node_stops_growth() {
        let data = exhaustive(4);
        let labels = BitVec::zeros(16);
        let tree = ClassicTree::train(
            &data,
            &labels,
            &[1.0; 16],
            &ClassicTreeConfig::with_depth(8),
        );
        assert_eq!(tree.num_splits(), 0);
        assert_eq!(tree.num_leaves(), 1);
        assert_eq!(tree.accuracy(&data, &labels), 1.0);
    }

    #[test]
    fn gini_and_entropy_both_solve_easy_tasks() {
        let data = exhaustive(5);
        let labels = BitVec::from_fn(32, |e| (e & 0b101) == 0b101);
        for criterion in [SplitCriterion::Entropy, SplitCriterion::Gini] {
            let tree = ClassicTree::train(
                &data,
                &labels,
                &[1.0; 32],
                &ClassicTreeConfig::with_depth(4).with_criterion(criterion),
            );
            assert_eq!(tree.accuracy(&data, &labels), 1.0, "{criterion:?}");
        }
    }

    #[test]
    fn weighting_shifts_majority_label() {
        // One feature, examples disagree; weights decide the leaf labels.
        let data = FeatureMatrix::from_fn(2, 1, |e, _| e == 1);
        let labels = BitVec::from_bools([true, false]);
        let tree = ClassicTree::train(
            &data,
            &labels,
            &[10.0, 1.0],
            &ClassicTreeConfig::with_depth(0),
        );
        // Depth 0: single leaf, heavy example wins.
        assert!(tree.predict_row(data.row(0)));
        assert!(tree.predict_row(data.row(1)));
    }

    #[test]
    fn distinct_features_can_exceed_lut_inputs() {
        // The motivating mismatch: a depth-3 classic tree may consult more
        // distinct features than any single level-wise tree of equal depth.
        let data = exhaustive(7);
        let labels = BitVec::from_fn(128, |e| {
            // Different quadrants keyed on f0/f1 depend on different features.
            match e & 0b11 {
                0b00 => (e >> 2) & 1 == 1,
                0b01 => (e >> 3) & 1 == 1,
                0b10 => (e >> 4) & 1 == 1,
                _ => (e >> 5) & 1 == 1,
            }
        });
        let tree = ClassicTree::train(
            &data,
            &labels,
            &[1.0; 128],
            &ClassicTreeConfig::with_depth(3),
        );
        assert!(
            tree.distinct_features().len() > 3,
            "expected more distinct features than depth, got {:?}",
            tree.distinct_features()
        );
    }
}
