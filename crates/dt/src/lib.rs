//! Decision trees for the PoET-BiN reproduction.
//!
//! Two tree families live here:
//!
//! * [`LevelWiseTree`] — the paper's modified decision tree (Algorithm 1,
//!   §2.1.1). Instead of growing one node at a time, the tree is trained
//!   *level by level*: every node of a level shares the same feature, so a
//!   `P`-level tree reads exactly `P` distinct inputs and its complete
//!   input→output behaviour fits a single `P`-input LUT. This is the RINC-0
//!   module.
//! * [`ClassicTree`] — a conventional node-wise CART-style tree limited by
//!   depth or node count, as used by off-the-shelf libraries (and by the
//!   POLYBiNN baseline the paper compares against). It exists to quantify
//!   the paper's claim that node-wise trees under-utilise LUT inputs.
//!
//! Both trees are binary classifiers over binary features and train on
//! weighted examples so they can serve as AdaBoost weak learners
//! (see `poetbin-boost`).
//!
//! # Example
//!
//! ```
//! use poetbin_bits::{BitVec, FeatureMatrix};
//! use poetbin_dt::{BitClassifier, LevelTreeConfig, LevelWiseTree};
//!
//! // Learn xor(f0, f1) from an exhaustive table over 4 features.
//! let data = FeatureMatrix::from_fn(16, 4, |e, j| (e >> j) & 1 == 1);
//! let labels = BitVec::from_fn(16, |e| ((e & 1) ^ ((e >> 1) & 1)) == 1);
//! let weights = vec![1.0; 16];
//! let tree = LevelWiseTree::train(&data, &labels, &weights, &LevelTreeConfig::new(2));
//! for e in 0..16 {
//!     assert_eq!(tree.predict_row(data.row(e)), labels.get(e));
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod classic_tree;
mod entropy;
mod level_tree;

pub use classic_tree::{ClassicTree, ClassicTreeConfig, SplitCriterion};
pub use entropy::{gini_impurity, weighted_binary_entropy};
pub use level_tree::{EmptyLeafPolicy, LevelTrainReport, LevelTreeConfig, LevelWiseTree};

use poetbin_bits::{BitVec, FeatureMatrix};

/// A binary classifier over binary feature rows.
///
/// Implemented by both tree families and by the boosted RINC modules in
/// `poetbin-boost`, so boosting can treat any of them as a weak learner.
pub trait BitClassifier {
    /// Predicts the binary class for one example row.
    fn predict_row(&self, row: &BitVec) -> bool;

    /// Predicts the binary class for every example in `data`.
    fn predict_batch(&self, data: &FeatureMatrix) -> BitVec {
        BitVec::from_fn(data.num_examples(), |e| self.predict_row(data.row(e)))
    }

    /// Weighted 0/1 error of the classifier on a labelled set.
    ///
    /// # Panics
    ///
    /// Panics if `labels` or `weights` disagree with `data` on length.
    fn weighted_error(&self, data: &FeatureMatrix, labels: &BitVec, weights: &[f64]) -> f64 {
        assert_eq!(data.num_examples(), labels.len());
        assert_eq!(data.num_examples(), weights.len());
        let preds = self.predict_batch(data);
        let total: f64 = weights.iter().sum();
        if total == 0.0 {
            return 0.0;
        }
        let mut wrong = 0.0;
        for e in preds.xor(labels).iter_ones() {
            wrong += weights[e];
        }
        wrong / total
    }

    /// Unweighted accuracy on a labelled set.
    fn accuracy(&self, data: &FeatureMatrix, labels: &BitVec) -> f64 {
        let n = data.num_examples();
        if n == 0 {
            return 1.0;
        }
        let agree = n - self.predict_batch(data).hamming_distance(labels);
        agree as f64 / n as f64
    }
}
