//! PoET-BiN: Power Efficient Tiny Binary Neurons — a from-scratch Rust
//! reproduction of the MLSys 2020 paper.
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! | crate | contents |
//! |-------|----------|
//! | [`poetbin_bits`] | packed bit vectors, LUT truth tables, feature matrices |
//! | [`poetbin_dt`] | level-wise decision trees (RINC-0) and a classic baseline |
//! | [`poetbin_engine`] | compiled word-parallel batch-inference engine |
//! | [`poetbin_boost`] | AdaBoost, MAT units, hierarchical RINC-L |
//! | [`poetbin_nn`] | CPU neural-network substrate (conv/dense/batch-norm/Adam) |
//! | [`poetbin_data`] | synthetic datasets, IDX loader, boolean tasks |
//! | [`poetbin_fpga`] | LUT netlists, 6-LUT mapping, pruning, simulation, timing, power |
//! | [`poetbin_hdl`] | VHDL generation and round-trip parsing |
//! | [`poetbin_power`] | operation-level energy models (Tables 4–6) |
//! | [`poetbin_baselines`] | BinaryNet, POLYBiNN-style, neural decision forest |
//! | [`poetbin_core`] | the assembled PoET-BiN architecture and A1→A4 workflow |
//! | [`poetbin_serve`] | adaptive micro-batching TCP inference server + client |
//!
//! # Quickstart
//!
//! ```
//! use poetbin::prelude::*;
//!
//! // Learn a majority function with a boosted hierarchy of LUT-sized trees.
//! let task = poetbin_data::binary::hidden_majority(400, 16, 5, 0.0, 1);
//! let rinc = RincModule::train(
//!     &task.features,
//!     &task.labels,
//!     &vec![1.0; 400],
//!     &RincConfig::new(3, 1),
//! );
//! assert!(rinc.accuracy(&task.features, &task.labels) > 0.9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use poetbin_baselines;
pub use poetbin_bits;
pub use poetbin_boost;
pub use poetbin_core;
pub use poetbin_data;
pub use poetbin_dt;
pub use poetbin_engine;
pub use poetbin_fpga;
pub use poetbin_hdl;
pub use poetbin_nn;
pub use poetbin_power;
pub use poetbin_serve;

/// The most commonly used items, for `use poetbin::prelude::*`.
pub mod prelude {
    pub use poetbin_baselines::{
        BinaryNet, BinaryNetConfig, MulticlassClassifier, NdfConfig, NeuralDecisionForest,
        PolyBinn, PolyBinnConfig, XnorClassifier,
    };
    pub use poetbin_bits::{BitVec, FeatureMatrix, TruthTable};
    pub use poetbin_boost::{AdaBoost, MatModule, RincConfig, RincModule, RincNode};
    pub use poetbin_core::{
        Architecture, PoetBinClassifier, QuantizedSparseOutput, RincBank, Scenario, ScenarioKind,
        ScenarioReport, Teacher, TeacherConfig, Workflow, WorkflowConfig, WorkflowResult,
    };
    pub use poetbin_data::ImageDataset;
    pub use poetbin_dt::{
        BitClassifier, ClassicTree, ClassicTreeConfig, LevelTreeConfig, LevelWiseTree,
    };
    pub use poetbin_engine::{ClassifierEngine, Engine, EvalPlan};
    pub use poetbin_fpga::{
        map_to_lut6, prune, simulate, Netlist, NetlistBuilder, PowerModel, TimingModel,
    };
    pub use poetbin_hdl::{generate_testbench, generate_vhdl, parse_vhdl};
    pub use poetbin_power::{binary_network_energy, fc_energy, fc_ops, Precision};
    pub use poetbin_serve::{Client, ServeConfig, Server};
}
