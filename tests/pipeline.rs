//! Cross-crate integration: the full A1→A4 pipeline against the baselines
//! on one synthetic dataset.

use poetbin::prelude::*;
use poetbin_core::teacher::TeacherConfig;

/// Smoke test: the complete A1→A4 path on a tiny synthetic-digits run.
/// Loose bounds only — this exists so CI exercises every stage (teacher,
/// binarisation, RINC distillation, quantised output) in seconds; the
/// heavier test below checks real accuracy orderings.
#[test]
fn fast_workflow_smoke() {
    let data = poetbin_data::synthetic::digits(720, 11);
    let (train, test) = data.split(600);

    let mut config = WorkflowConfig::fast();
    config.teacher = TeacherConfig {
        epochs: 3,
        ..TeacherConfig::default()
    };
    config.arch.trees_per_module = 6;
    config.output_epochs = 5;
    let result = Workflow::new(config).run(&train, &test);

    // Ten classes, so chance is 0.1; every stage must clear it and produce
    // features for the whole split.
    for (stage, acc) in [
        ("A1", result.a1),
        ("A2", result.a2),
        ("A3", result.a3),
        ("A4", result.a4),
    ] {
        assert!(acc > 0.12, "{stage} at chance: {acc}");
    }
    assert_eq!(result.train_features.num_examples(), 600);
    assert_eq!(result.test_features.num_examples(), 120);
    assert!(
        result.rinc_fidelity > 0.5,
        "fidelity {}",
        result.rinc_fidelity
    );

    // The compiled batch engine must reproduce the software path
    // bit-identically on a real trained classifier, with and without
    // sharding, and survive a save/load round-trip unchanged.
    let clf = &result.classifier;
    let soft = clf.predict(&result.test_features);
    let engine = ClassifierEngine::compile(clf, result.test_features.num_features())
        .expect("classifier netlists are topologically ordered");
    assert_eq!(engine.predict(&result.test_features), soft);
    let sharded = ClassifierEngine::compile(clf, result.test_features.num_features())
        .expect("compiles")
        .with_threads(4);
    assert_eq!(sharded.predict(&result.test_features), soft);

    for format in [
        poetbin_core::ModelFormat::PoetBin1,
        poetbin_core::ModelFormat::PoetBin2,
    ] {
        let restored = poetbin_core::persist::load_classifier(
            &poetbin_core::persist::save_classifier(clf, format),
        )
        .expect("model round-trip");
        assert_eq!(&restored, clf, "{format}");
        assert_eq!(restored.predict(&result.test_features), soft, "{format}");
    }
}

#[test]
fn workflow_and_baselines_share_features_and_beat_chance() {
    let data = poetbin_data::synthetic::digits(1200, 31);
    let (train, test) = data.split(1000);

    let mut config = WorkflowConfig::fast();
    config.teacher = TeacherConfig {
        epochs: 5,
        ..TeacherConfig::default()
    };
    config.arch.trees_per_module = 6;
    let result = Workflow::new(config).run(&train, &test);

    // Stage ordering: binarisation steps may each cost accuracy, and the
    // distilled classifier tracks the teacher. All must beat 10-class
    // chance by a wide margin.
    assert!(result.a1 > 0.4, "A1 {}", result.a1);
    assert!(result.a2 > 0.3, "A2 {}", result.a2);
    assert!(result.a3 > 0.3, "A3 {}", result.a3);
    assert!(result.a4 > 0.25, "A4 {}", result.a4);
    assert!(
        result.rinc_fidelity > 0.6,
        "fidelity {}",
        result.rinc_fidelity
    );

    // Baselines consume the identical binary features (§4.1 protocol).
    let bn = BinaryNet::train(
        &result.train_features,
        &train.labels,
        10,
        &BinaryNetConfig {
            hidden: 64,
            epochs: 20,
            learning_rate: 0.01,
            seed: 3,
        },
    );
    let bn_acc = bn.accuracy(&result.test_features, &test.labels);
    assert!(bn_acc > 0.25, "BinaryNet {bn_acc}");

    let pb = PolyBinn::train(
        &result.train_features,
        &train.labels,
        10,
        &PolyBinnConfig {
            max_depth: 5,
            rounds: 4,
        },
    );
    let pb_acc = pb.accuracy(&result.test_features, &test.labels);
    assert!(pb_acc > 0.2, "PolyBinn {pb_acc}");
}

#[test]
fn rinc_capacity_ordering_holds() {
    // RINC-0 ≤ RINC-1 ≤ RINC-2 in capacity on a wide task (the paper's
    // hierarchy motivation, §2.1.3).
    let task = poetbin_data::binary::hidden_majority(1500, 32, 15, 0.05, 5);
    let train = task
        .features
        .select_examples(&(0..1000).collect::<Vec<_>>());
    let train_labels = BitVec::from_fn(1000, |e| task.labels.get(e));
    let test = task
        .features
        .select_examples(&(1000..1500).collect::<Vec<_>>());
    let test_labels = BitVec::from_fn(500, |e| task.labels.get(1000 + e));
    let w = vec![1.0; 1000];

    let accs: Vec<f64> = (0..3)
        .map(|l| {
            let node = RincNode::train(&train, &train_labels, &w, &RincConfig::new(3, l));
            node.accuracy(&test, &test_labels)
        })
        .collect();
    assert!(
        accs[2] >= accs[0] - 0.02,
        "hierarchy should not lose to a bare tree: {accs:?}"
    );
    assert!(accs[2] > 0.7, "RINC-2 too weak: {accs:?}");
}
