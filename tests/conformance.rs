//! Cross-backend conformance over checked-in `POETBIN1` fixtures.
//!
//! Every inference backend in the workspace must agree bit-for-bit on the
//! same trained model: the scalar software path
//! (`PoetBinClassifier::predict`), the compiled batch engine
//! (`ClassifierEngine`, single- and multi-shard, every lane-block width
//! `B ∈ {1, 4, 8}`), the serving packed paths (`predict_word_into` /
//! `predict_block_into` over packed lane words, including partial
//! tails), and the FPGA netlist simulator. The fixtures under
//! `tests/fixtures/` are golden: their bytes must never drift (the model
//! format is versioned — breaking it silently would strand deployed
//! models), and their predictions on the deterministic probe rows are
//! pinned below.
//!
//! Fixtures are regenerated deliberately with
//! `cargo run -p poetbin_bench --bin gen_fixture`, which also prints the
//! golden arrays to paste here.

use poetbin_bits::{pack_block_rows, pack_word_rows, BitVec, FeatureMatrix};
use poetbin_core::persist::{load_classifier, save_classifier};
use poetbin_core::PoetBinClassifier;
use poetbin_engine::ClassifierEngine;
use poetbin_fpga::simulate;

/// `(file name, feature width, golden predictions of the first 32 probe
/// rows)` — printed by `gen_fixture`.
const FIXTURES: [(&str, usize, [usize; 32]); 2] = [
    (
        "tiny.poetbin",
        16,
        [
            1, 1, 0, 1, 1, 0, 0, 1, 1, 1, 0, 0, 1, 0, 0, 1, 0, 0, 1, 1, 1, 1, 0, 0, 0, 1, 1, 1, 0,
            1, 0, 1,
        ],
    ),
    (
        "deep.poetbin",
        48,
        [
            1, 2, 1, 0, 3, 3, 0, 0, 0, 3, 2, 3, 3, 0, 0, 3, 0, 2, 1, 3, 0, 1, 3, 3, 3, 2, 3, 0, 3,
            0, 1, 3,
        ],
    ),
];

fn fixture_bytes(name: &str) -> Vec<u8> {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read(&path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

fn fixture_classifier(name: &str) -> PoetBinClassifier {
    load_classifier(&fixture_bytes(name)).expect("fixture decodes")
}

/// The deterministic probe row shared with `gen_fixture.rs` (SplitMix64
/// finalizer over the (row, feature) pair).
fn probe_row(num_features: usize, i: usize) -> BitVec {
    BitVec::from_fn(num_features, |j| {
        let mut z = (i as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(j as u64);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) & 1 == 1
    })
}

fn probe_matrix(num_features: usize, n: usize) -> FeatureMatrix {
    FeatureMatrix::from_rows((0..n).map(|i| probe_row(num_features, i)).collect())
}

/// The model format is load-stable and save-stable: decoding a fixture
/// and re-encoding it must reproduce the file byte for byte. If this
/// fails, the `POETBIN1` encoder changed shape — either restore
/// compatibility or bump the magic and regenerate fixtures deliberately.
#[test]
fn fixture_bytes_never_drift() {
    for (name, _, _) in FIXTURES {
        let bytes = fixture_bytes(name);
        assert_eq!(&bytes[..8], b"POETBIN1", "{name}: magic");
        let clf = load_classifier(&bytes).expect("fixture decodes");
        assert_eq!(
            save_classifier(&clf),
            bytes,
            "{name}: save(load(fixture)) drifted from the checked-in bytes"
        );
    }
}

/// The scalar software path still produces the pinned golden predictions.
#[test]
fn golden_predictions_hold() {
    for (name, f, golden) in FIXTURES {
        let clf = fixture_classifier(name);
        assert_eq!(clf.min_features(), f, "{name}: width");
        let preds = clf.predict(&probe_matrix(f, 32));
        assert_eq!(preds, golden, "{name}: scalar path drifted from golden");
    }
}

/// Scalar predict, the compiled engine (1 shard and 4 shards), the
/// serving word path and the netlist simulator agree bit-for-bit on a
/// probe batch spanning several words plus a partial tail.
#[test]
fn all_backends_agree_bit_for_bit() {
    for (name, f, _) in FIXTURES {
        let clf = fixture_classifier(name);
        let n = 200; // 3 full words + a 8-lane tail
        let batch = probe_matrix(f, n);
        let scalar = clf.predict(&batch);

        let engine = ClassifierEngine::compile(&clf, f).expect("compiles");
        assert_eq!(engine.predict(&batch), scalar, "{name}: engine(1)");
        let sharded = ClassifierEngine::compile(&clf, f)
            .expect("compiles")
            .with_threads(4);
        assert_eq!(sharded.predict(&batch), scalar, "{name}: engine(4)");
        for block in [1usize, 4, 8] {
            let blocked = ClassifierEngine::compile(&clf, f)
                .expect("compiles")
                .with_block_words(block);
            assert_eq!(blocked.predict(&batch), scalar, "{name}: engine B={block}");
        }

        // The serving path: pack rows into lane words (full words and the
        // partial tail) exactly as the micro-batcher does.
        let mut scratch = engine.scratch();
        let rows: Vec<BitVec> = (0..n).map(|i| probe_row(f, i)).collect();
        let mut served = Vec::with_capacity(n);
        for chunk in rows.chunks(64) {
            let words = pack_word_rows(chunk.iter(), f);
            let mut preds = vec![0usize; chunk.len()];
            engine.predict_word_into(&words, &mut scratch, &mut preds);
            served.extend(preds);
        }
        assert_eq!(served, scalar, "{name}: serving word path");

        // The blocked serving path: all 200 rows (3 full words + a
        // partial tail) coalesced into a single 4-word masked block.
        let blocks = pack_block_rows(rows.iter(), f, n.div_ceil(64));
        let mut preds = vec![0usize; n];
        engine.predict_block_into(&blocks, &mut scratch, &mut preds);
        assert_eq!(preds, scalar, "{name}: serving block path");

        // The FPGA netlist simulator, decoded through the classifier's
        // own output-bit ordering.
        let net = clf.to_netlist(f);
        let sim = simulate(&net, &rows);
        for (v, &expect) in scalar.iter().enumerate() {
            let bits: Vec<bool> = (0..net.outputs().len())
                .map(|k| sim.outputs[k].get(v))
                .collect();
            assert_eq!(
                clf.argmax_from_output_bits(&bits),
                expect,
                "{name}: netlist sim disagrees on vector {v}"
            );
        }
    }
}
