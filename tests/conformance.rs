//! Cross-backend conformance over checked-in model fixtures, in both
//! formats.
//!
//! Every inference backend in the workspace must agree bit-for-bit on the
//! same trained model: the scalar software path
//! (`PoetBinClassifier::predict`), the compiled batch engine
//! (`ClassifierEngine`, single- and multi-shard, every lane-block width
//! `B ∈ {1, 4, 8}`), the serving packed paths (`predict_word_into` /
//! `predict_block_into` over packed lane words, including partial
//! tails), and the FPGA netlist simulator. The fixtures under
//! `tests/fixtures/` are golden — each model checked in twice,
//! `<name>.poetbin` (`POETBIN1`) beside `<name>.poetbin2` (`POETBIN2`).
//! Their bytes must never drift (the model format is versioned — breaking
//! it silently would strand deployed models), both formats must decode to
//! the identical classifier, and their predictions on the deterministic
//! probe rows are pinned below. The compact format must also *stay*
//! compact: the `deep` twin is gated at ≤ 70% of its `POETBIN1` size.
//!
//! Fixtures are regenerated deliberately with
//! `cargo run -p poetbin_bench --bin gen_fixture`, which also prints the
//! golden arrays to paste here.

use poetbin_bits::{pack_block_rows, pack_word_rows, BitVec, FeatureMatrix};
use poetbin_core::persist::{load_classifier, save_classifier, ModelFormat};
use poetbin_core::PoetBinClassifier;
use poetbin_engine::ClassifierEngine;
use poetbin_fpga::simulate;

/// `(fixture name, feature width, golden predictions of the first 32
/// probe rows)` — printed by `gen_fixture`. Each name exists on disk in
/// both formats; the goldens apply to both (they decode identically).
const FIXTURES: [(&str, usize, [usize; 32]); 2] = [
    (
        "tiny",
        16,
        [
            1, 1, 0, 1, 1, 0, 0, 1, 1, 1, 0, 0, 1, 0, 0, 1, 0, 0, 1, 1, 1, 1, 0, 0, 0, 1, 1, 1, 0,
            1, 0, 1,
        ],
    ),
    (
        "deep",
        48,
        [
            1, 2, 1, 0, 3, 3, 0, 0, 0, 3, 2, 3, 3, 0, 0, 3, 0, 2, 1, 3, 0, 1, 3, 3, 3, 2, 3, 0, 3,
            0, 1, 3,
        ],
    ),
];

/// Fixture file extension and magic for each on-disk format.
const FORMATS: [(ModelFormat, &str, &[u8; 8]); 2] = [
    (ModelFormat::PoetBin1, "poetbin", b"POETBIN1"),
    (ModelFormat::PoetBin2, "poetbin2", b"POETBIN2"),
];

fn fixture_bytes(name: &str) -> Vec<u8> {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read(&path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

/// Loads a fixture through its `POETBIN2` file (the format equality test
/// pins that the `POETBIN1` twin decodes identically, so every backend
/// check below transitively covers both).
fn fixture_classifier(name: &str) -> PoetBinClassifier {
    load_classifier(&fixture_bytes(&format!("{name}.poetbin2"))).expect("fixture decodes")
}

/// The deterministic probe row shared with `gen_fixture.rs` (SplitMix64
/// finalizer over the (row, feature) pair).
fn probe_row(num_features: usize, i: usize) -> BitVec {
    BitVec::from_fn(num_features, |j| {
        let mut z = (i as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(j as u64);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) & 1 == 1
    })
}

fn probe_matrix(num_features: usize, n: usize) -> FeatureMatrix {
    FeatureMatrix::from_rows((0..n).map(|i| probe_row(num_features, i)).collect())
}

/// Both model formats are load-stable and save-stable: decoding a fixture
/// and re-encoding it in the same format must reproduce the file byte for
/// byte. If this fails, an encoder changed shape — either restore
/// compatibility or bump the magic and regenerate fixtures deliberately.
#[test]
fn fixture_bytes_never_drift() {
    for (name, _, _) in FIXTURES {
        for (format, ext, magic) in FORMATS {
            let bytes = fixture_bytes(&format!("{name}.{ext}"));
            assert_eq!(&bytes[..8], magic, "{name}.{ext}: magic");
            let clf = load_classifier(&bytes).expect("fixture decodes");
            assert_eq!(
                save_classifier(&clf, format),
                bytes,
                "{name}.{ext}: save(load(fixture)) drifted from the checked-in bytes"
            );
        }
    }
}

/// The two on-disk formats are twins: they decode to the identical
/// classifier, bit for bit.
#[test]
fn formats_decode_identically() {
    for (name, _, _) in FIXTURES {
        let v1 = load_classifier(&fixture_bytes(&format!("{name}.poetbin"))).expect("v1");
        let v2 = load_classifier(&fixture_bytes(&format!("{name}.poetbin2"))).expect("v2");
        assert_eq!(v1, v2, "{name}: formats disagree");
    }
}

/// The size-regression gate: `POETBIN2` must stay substantially smaller
/// than `POETBIN1` on the `deep` fixture (the realistic multi-level
/// model). A refactor that bloats the compact encoding fails here.
#[test]
fn poetbin2_fixture_is_substantially_smaller() {
    for (name, _, _) in FIXTURES {
        let v1 = fixture_bytes(&format!("{name}.poetbin")).len();
        let v2 = fixture_bytes(&format!("{name}.poetbin2")).len();
        assert!(
            (v2 as f64) < 0.7 * v1 as f64,
            "{name}: POETBIN2 is {v2} bytes, POETBIN1 {v1} — compact format regressed"
        );
    }
}

/// The scalar software path still produces the pinned golden predictions.
#[test]
fn golden_predictions_hold() {
    for (name, f, golden) in FIXTURES {
        let clf = fixture_classifier(name);
        assert_eq!(clf.min_features(), f, "{name}: width");
        let preds = clf.predict(&probe_matrix(f, 32));
        assert_eq!(preds, golden, "{name}: scalar path drifted from golden");
    }
}

/// Scalar predict, the compiled engine (1 shard and 4 shards), the
/// serving word path and the netlist simulator agree bit-for-bit on a
/// probe batch spanning several words plus a partial tail.
#[test]
fn all_backends_agree_bit_for_bit() {
    for (name, f, _) in FIXTURES {
        let clf = fixture_classifier(name);
        let n = 200; // 3 full words + a 8-lane tail
        let batch = probe_matrix(f, n);
        let scalar = clf.predict(&batch);

        let engine = ClassifierEngine::compile(&clf, f).expect("compiles");
        assert_eq!(engine.predict(&batch), scalar, "{name}: engine(1)");
        let sharded = ClassifierEngine::compile(&clf, f)
            .expect("compiles")
            .with_threads(4);
        assert_eq!(sharded.predict(&batch), scalar, "{name}: engine(4)");
        for block in [1usize, 4, 8] {
            let blocked = ClassifierEngine::compile(&clf, f)
                .expect("compiles")
                .with_block_words(block);
            assert_eq!(blocked.predict(&batch), scalar, "{name}: engine B={block}");
        }

        // The serving path: pack rows into lane words (full words and the
        // partial tail) exactly as the micro-batcher does.
        let mut scratch = engine.scratch();
        let rows: Vec<BitVec> = (0..n).map(|i| probe_row(f, i)).collect();
        let mut served = Vec::with_capacity(n);
        for chunk in rows.chunks(64) {
            let words = pack_word_rows(chunk.iter(), f);
            let mut preds = vec![0usize; chunk.len()];
            engine.predict_word_into(&words, &mut scratch, &mut preds);
            served.extend(preds);
        }
        assert_eq!(served, scalar, "{name}: serving word path");

        // The blocked serving path: all 200 rows (3 full words + a
        // partial tail) coalesced into a single 4-word masked block.
        let blocks = pack_block_rows(rows.iter(), f, n.div_ceil(64));
        let mut preds = vec![0usize; n];
        engine.predict_block_into(&blocks, &mut scratch, &mut preds);
        assert_eq!(preds, scalar, "{name}: serving block path");

        // The FPGA netlist simulator, decoded through the classifier's
        // own output-bit ordering.
        let net = clf.to_netlist(f);
        let sim = simulate(&net, &rows);
        for (v, &expect) in scalar.iter().enumerate() {
            let bits: Vec<bool> = (0..net.outputs().len())
                .map(|k| sim.outputs[k].get(v))
                .collect();
            assert_eq!(
                clf.argmax_from_output_bits(&bits),
                expect,
                "{name}: netlist sim disagrees on vector {v}"
            );
        }
    }
}
