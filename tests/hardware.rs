//! Cross-crate integration: software model ≡ netlist ≡ generated VHDL,
//! through mapping and pruning.

use poetbin::prelude::*;

fn small_classifier() -> (PoetBinClassifier, FeatureMatrix, Vec<usize>) {
    let task = poetbin_data::binary::hidden_majority(600, 48, 9, 0.05, 9);
    let labels: Vec<usize> = (0..600).map(|e| usize::from(task.labels.get(e))).collect();
    let targets = FeatureMatrix::from_fn(600, 2 * 3, |e, j| (j / 3 == 1) == task.labels.get(e));
    let bank = RincBank::train(&task.features, &targets, &RincConfig::new(3, 1));
    let inter = bank.predict_bits(&task.features);
    let output = QuantizedSparseOutput::train(&inter, &labels, 2, 8, 15);
    (PoetBinClassifier::new(bank, output), task.features, labels)
}

#[test]
fn software_netlist_mapped_pruned_vhdl_all_agree() {
    let (clf, features, _) = small_classifier();
    let net = clf.to_netlist(48);
    let (mapped, _) = map_to_lut6(&net);
    let (pruned, _) = prune(&mapped);
    let vhdl = clf.to_vhdl(48, "dut");
    let reparsed = parse_vhdl(&vhdl).expect("generated VHDL parses");

    let vectors: Vec<BitVec> = features.iter_rows().take(100).cloned().collect();
    let reference = simulate(&net, &vectors);
    for (name, other) in [
        ("mapped", &mapped),
        ("pruned", &pruned),
        ("vhdl-roundtrip", &reparsed),
    ] {
        let sim = simulate(other, &vectors);
        assert_eq!(sim.outputs, reference.outputs, "{name} diverged");
    }

    // And the netlist agrees with the pure-software predictions.
    let subset: Vec<usize> = (0..100).collect();
    let soft = clf.predict(&features.select_examples(&subset));
    for (v, &expect) in soft.iter().enumerate() {
        let bits: Vec<bool> = (0..net.outputs().len())
            .map(|k| reference.outputs[k].get(v))
            .collect();
        assert_eq!(clf.argmax_from_output_bits(&bits), expect, "vector {v}");
    }
}

#[test]
fn timing_and_power_reports_are_sane() {
    let (clf, features, _) = small_classifier();
    let net = clf.to_netlist(48);
    let (mapped, _) = map_to_lut6(&net);
    let timing = TimingModel::default().analyze(&mapped);
    // RINC-1 + output LUT = 3 LUT levels on the critical path.
    assert_eq!(timing.lut_levels, 3, "{timing:?}");
    assert!(timing.critical_path_ns > 3.0 && timing.critical_path_ns < 10.0);

    let vectors: Vec<BitVec> = features.iter_rows().take(128).cloned().collect();
    let sim = simulate(&mapped, &vectors);
    let power = PowerModel::default().estimate(&mapped, &sim, 100.0);
    assert!(power.total_w() > power.static_w);
    assert!(
        power.total_w() < 1.0,
        "tiny design should be well under a watt"
    );
    let energy = power.energy_per_inference_j(100.0);
    assert!(energy < 1e-6, "energy {energy}");
}

#[test]
fn testbench_covers_every_vector() {
    let (clf, features, _) = small_classifier();
    let subset = features.select_examples(&(0..5).collect::<Vec<_>>());
    let tb = clf.to_testbench(&subset, "dut");
    for v in 0..5 {
        assert!(
            tb.contains(&format!("vector {v} mismatch")),
            "vector {v} missing"
        );
    }
    assert!(tb.contains("5 vectors"));
}
