//! Pipeline-level regression suite: seeded reproducibility of the whole
//! A1→A4 workflow, shard-count invariance through the workflow, and the
//! first coverage of `WorkflowConfig::paper_m1`.

use poetbin::prelude::*;
use poetbin_core::persist::{save_classifier, ModelFormat};
use poetbin_core::teacher::TeacherConfig;

fn small_config() -> WorkflowConfig {
    let mut config = WorkflowConfig::fast();
    config.teacher = TeacherConfig {
        epochs: 3,
        ..TeacherConfig::default()
    };
    config.arch.trees_per_module = 6;
    config.output_epochs = 5;
    config
}

#[test]
fn workflow_is_reproducible_bit_for_bit() {
    let data = poetbin_data::synthetic::digits(720, 43);
    let (train, test) = data.split(600);

    let first = Workflow::new(small_config()).run(&train, &test);
    let second = Workflow::new(small_config()).run(&train, &test);

    // Same config + same seed: every staged accuracy is equal, not merely
    // close — the whole pipeline is deterministic.
    assert_eq!(first.a1, second.a1);
    assert_eq!(first.a2, second.a2);
    assert_eq!(first.a3, second.a3);
    assert_eq!(first.a4, second.a4);
    assert_eq!(first.rinc_fidelity, second.rinc_fidelity);

    // And the persisted classifiers are byte-identical.
    assert_eq!(
        save_classifier(&first.classifier, ModelFormat::PoetBin2),
        save_classifier(&second.classifier, ModelFormat::PoetBin2),
        "two seeded runs persisted different POETBIN2 bytes"
    );
}

#[test]
fn workflow_is_invariant_to_bank_shards() {
    let data = poetbin_data::synthetic::digits(720, 47);
    let (train, test) = data.split(600);

    let reference = Workflow::new(small_config()).run(&train, &test);
    for shards in [1usize, 3] {
        let mut config = small_config();
        config.bank_shards = shards;
        let run = Workflow::new(config).run(&train, &test);
        assert_eq!(run.a4, reference.a4, "shards={shards}");
        assert_eq!(
            save_classifier(&run.classifier, ModelFormat::PoetBin2),
            save_classifier(&reference.classifier, ModelFormat::PoetBin2),
            "shards={shards} changed the trained classifier"
        );
    }
}

#[test]
fn paper_m1_trains_within_budget_and_beats_chance() {
    // First-ever exercise of the paper's M1 configuration: full P=8 /
    // 32-tree / RINC-2 shape, scaled only in teacher budget and data.
    let data = poetbin_data::synthetic::digits(900, 53);
    let (train, test) = data.split(750);

    let mut config = WorkflowConfig::paper_m1();
    assert_eq!(config.arch.lut_inputs, 8);
    assert_eq!(config.arch.trees_per_module, 32);
    assert_eq!(config.arch.rinc_levels, 2);
    config.teacher.epochs = 3;
    config.output_epochs = 10;
    let result = Workflow::new(config).run(&train, &test);

    // Ten classes: chance is 0.1. Every stage must clear it.
    for (stage, acc) in [
        ("A1", result.a1),
        ("A2", result.a2),
        ("A3", result.a3),
        ("A4", result.a4),
    ] {
        assert!(acc > 0.12, "{stage} at chance: {acc}");
    }
    assert!(
        result.rinc_fidelity > 0.5,
        "fidelity {}",
        result.rinc_fidelity
    );

    // The M1 bank is one module per intermediate neuron (10 classes × 8).
    let bank = result.classifier.bank();
    assert_eq!(bank.len(), 80);

    // LUT budget: each RINC-2 module is at most 32 trees + 4 subgroup
    // MATs + 1 top MAT = 37 LUTs; with 8 output LUTs per class the
    // classifier cannot exceed 80 × 37 + 80 = 3040.
    let luts = result.classifier.lut_count();
    assert!(luts > 0 && luts <= 3040, "LUTs {luts}");
}
