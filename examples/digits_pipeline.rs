//! The full PoET-BiN pipeline on the MNIST-like synthetic dataset:
//! vanilla CNN → binary features → teacher → RINC distillation →
//! quantised sparse output layer (Figure 5 / Table 2 of the paper).
//!
//! ```sh
//! cargo run --release --example digits_pipeline
//! ```

use poetbin::prelude::*;
use poetbin_core::teacher::TeacherConfig as CoreTeacherConfig;

fn main() {
    // Generate and split the stand-in dataset.
    let data = poetbin_data::synthetic::digits(2400, 42);
    let (train, test) = data.split(2000);
    println!(
        "dataset: {} train / {} test images of shape {:?}",
        train.len(),
        test.len(),
        train.image_shape()
    );

    // The M1 architecture of Table 1, hidden widths scaled for CPU
    // training; P=6 with 12 trees per module keeps the demo quick.
    let mut config = WorkflowConfig::fast();
    config.teacher = CoreTeacherConfig {
        epochs: 5,
        verbose: true,
        ..CoreTeacherConfig::default()
    };

    let result = Workflow::new(config).run(&train, &test);

    println!("\n--- staged accuracies (Table 2 row) ---");
    println!("A1 vanilla:        {:.4}", result.a1);
    println!("A2 binary features:{:.4}", result.a2);
    println!("A3 teacher:        {:.4}", result.a3);
    println!("A4 PoET-BiN:       {:.4}", result.a4);
    println!("RINC fidelity:     {:.4}", result.rinc_fidelity);

    // Baseline comparison on the same binary features (§4.1 protocol).
    let bn = BinaryNet::train(
        &result.train_features,
        &train.labels,
        10,
        &BinaryNetConfig::default(),
    );
    println!(
        "BinaryNet (same features): {:.4}",
        bn.accuracy(&result.test_features, &test.labels)
    );

    let classifier = &result.classifier;
    println!(
        "\nclassifier: {} logical LUTs ({} RINC + {} output)",
        classifier.lut_count(),
        classifier.bank().lut_count(),
        classifier.output().lut_count()
    );
}
