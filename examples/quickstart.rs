//! Quickstart: train a RINC module on a boolean task and fold it into a
//! LUT netlist.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use poetbin::prelude::*;

fn main() {
    // 1. A binary classification task over 32 binary features: the label
    //    is a hidden majority vote over 9 of them, with 5% label noise.
    let task = poetbin_data::binary::hidden_majority(2000, 32, 9, 0.05, 7);
    let train = task
        .features
        .select_examples(&(0..1500).collect::<Vec<_>>());
    let train_labels = BitVec::from_fn(1500, |e| task.labels.get(e));
    let test = task
        .features
        .select_examples(&(1500..2000).collect::<Vec<_>>());
    let test_labels = BitVec::from_fn(500, |e| task.labels.get(1500 + e));

    // 2. Train a RINC-2 hierarchy: P=4 LUT inputs, two AdaBoost levels.
    let config = RincConfig::new(4, 2);
    let rinc = RincModule::train(&train, &train_labels, &vec![1.0; 1500], &config);
    println!(
        "trained RINC-2: {} LUTs, {} LUT levels deep",
        rinc.lut_count(),
        rinc.lut_depth()
    );
    println!("test accuracy: {:.3}", rinc.accuracy(&test, &test_labels));

    // 3. Compare with a single level-wise tree (RINC-0) — the boost in
    //    capacity is the whole point of the hierarchy.
    let tree = LevelWiseTree::train(
        &train,
        &train_labels,
        &vec![1.0; 1500],
        &LevelTreeConfig::new(4),
    );
    println!(
        "single RINC-0 tree accuracy: {:.3}",
        tree.accuracy(&test, &test_labels)
    );

    // 4. Lower the module onto the FPGA fabric model and time it.
    let mut builder = NetlistBuilder::new();
    let inputs = builder.add_inputs(32);
    let out = add_rinc_to_netlist(&mut builder, &rinc, &inputs);
    builder.set_outputs(vec![out]);
    let net = builder.finish();
    let (mapped, _) = map_to_lut6(&net);
    let timing = TimingModel::default().analyze(&mapped);
    println!(
        "hardware: {} fabric LUTs, critical path {:.2} ns ({:.0} MHz)",
        mapped.area().luts,
        timing.critical_path_ns,
        timing.fmax_mhz
    );
}

/// Recursively lowers a RINC node onto the netlist builder.
fn add_rinc_to_netlist(b: &mut NetlistBuilder, module: &RincModule, inputs: &[usize]) -> usize {
    let children: Vec<usize> = module
        .children()
        .iter()
        .map(|child| match child {
            RincNode::Tree(t) => {
                let ins: Vec<usize> = t.features().iter().map(|&f| inputs[f]).collect();
                b.add_lut(ins, t.table().clone())
            }
            RincNode::Module(m) => add_rinc_to_netlist(b, m, inputs),
        })
        .collect();
    b.add_lut(children, module.mat().table().clone())
}
