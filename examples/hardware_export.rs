//! Hardware flow: train a classifier, lower it to the FPGA fabric model,
//! measure area/timing/power, and emit VHDL plus a self-checking
//! testbench — the paper's automatic VHDL generation (§4.2).
//!
//! ```sh
//! cargo run --release --example hardware_export
//! ```

use poetbin::prelude::*;

fn main() {
    // A compact classifier: 2 classes, P=4, RINC-1 — small enough to read
    // the generated VHDL by eye.
    let task = poetbin_data::binary::hidden_majority(1200, 64, 9, 0.05, 3);
    let labels: Vec<usize> = (0..1200).map(|e| usize::from(task.labels.get(e))).collect();
    let targets = poetbin_bits::FeatureMatrix::from_fn(1200, 2 * 4, |e, j| {
        (j / 4 == 1) == task.labels.get(e)
    });
    let bank = RincBank::train(&task.features, &targets, &RincConfig::new(4, 1));
    let inter = bank.predict_bits(&task.features);
    let output = QuantizedSparseOutput::train(&inter, &labels, 2, 8, 20);
    let classifier = PoetBinClassifier::new(bank, output);
    println!(
        "software accuracy: {:.3}",
        classifier.accuracy(&task.features, &labels)
    );

    // Lower to the fabric: map wide LUTs, run the synthesizer-style
    // pruning, and analyze.
    let netlist = classifier.to_netlist(64);
    let (mapped, map_report) = map_to_lut6(&netlist);
    let (pruned, prune_report) = prune(&mapped);
    println!(
        "netlist: {} logical LUTs → {} fabric LUTs → {} after pruning ({:.1}% removed)",
        netlist.area().luts,
        mapped.area().luts,
        pruned.area().luts,
        prune_report.lut_reduction() * 100.0
    );
    println!(
        "mapping: {} wide LUTs decomposed into {} LUT6 + {} muxes",
        map_report.decomposed_luts, map_report.emitted_luts, map_report.emitted_muxes
    );

    let timing = TimingModel::default().analyze(&pruned);
    println!(
        "timing: {:.2} ns critical path, {} LUT levels, fmax {:.0} MHz",
        timing.critical_path_ns, timing.lut_levels, timing.fmax_mhz
    );

    // Switching activity from real feature vectors drives the power model.
    let vectors: Vec<BitVec> = task.features.iter_rows().take(256).cloned().collect();
    let sim = simulate(&pruned, &vectors);
    let power = PowerModel::default().estimate(&pruned, &sim, 100.0);
    println!(
        "power @100 MHz: {:.3} W dynamic + {:.3} W static = {:.3} W ({:.2e} J/inference)",
        power.dynamic_w(),
        power.static_w,
        power.total_w(),
        power.energy_per_inference_j(100.0)
    );

    // Emit VHDL and verify the generator by parsing it back.
    let vhdl = classifier.to_vhdl(64, "poetbin_demo");
    let reparsed = parse_vhdl(&vhdl).expect("generated VHDL must parse");
    let check: Vec<BitVec> = task.features.iter_rows().take(32).cloned().collect();
    let original = simulate(&netlist, &check);
    let roundtrip = simulate(&reparsed, &check);
    assert_eq!(
        original.outputs, roundtrip.outputs,
        "VHDL round-trip mismatch"
    );
    println!(
        "\nVHDL: {} lines, round-trip verified on 32 vectors",
        vhdl.lines().count()
    );

    let tb = classifier.to_testbench(
        &task.features.select_examples(&(0..8).collect::<Vec<_>>()),
        "poetbin_demo",
    );
    println!(
        "testbench: {} lines (8 vectors, self-checking)",
        tb.lines().count()
    );
    println!(
        "\nfirst VHDL lines:\n{}",
        vhdl.lines().take(12).collect::<Vec<_>>().join("\n")
    );
}
