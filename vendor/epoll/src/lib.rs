//! Offline stand-in for the readiness-polling slice of `libc`/`mio`.
//!
//! The build container has no network access, so — like the `rand` /
//! `serde` / `criterion` shims next door — this crate vendors the narrow
//! system-call surface `poetbin_serve`'s event loop actually needs:
//! Linux `epoll` (level-triggered readiness on any file descriptor) and
//! `eventfd` (a cross-thread wake-up fd). Everything is wrapped in a
//! *safe* API ([`Poller`], [`Waker`], [`Interest`], [`Event`]), so this
//! crate is the only place in the workspace that contains `unsafe` code:
//! raw `extern "C"` declarations against the host libc that `std`
//! already links, and the calls into them.
//!
//! Design notes:
//!
//! * **Level-triggered only.** Edge-triggered epoll saves syscalls but
//!   moves the starvation bugs into the caller; the serving loop re-arms
//!   interest explicitly instead, which is easy to reason about and
//!   test.
//! * **The caller owns every fd.** [`Poller::add`] borrows a raw fd; the
//!   kernel drops the registration automatically when the fd is closed,
//!   and [`Poller::delete`] exists for the orderly path. Nothing here
//!   duplicates or retains descriptors.
//! * **Tokens are plain `u64`s** carried in `epoll_event.data` — the
//!   caller's map key, not an index this crate interprets.
//!
//! Swapping this for the real `libc`/`mio` crates once the environment
//! has network access is a localised change: only `poetbin_serve::event_loop`
//! consumes this API.

#![warn(missing_docs)]

use std::io;
use std::os::fd::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// The raw libc surface. Kernel ABI constants are from the Linux UAPI
/// headers; `std` already links libc, so the symbols resolve without any
/// build script.
mod sys {
    use std::os::raw::{c_int, c_uint, c_void};

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;

    /// `EPOLL_CLOEXEC` / `EFD_CLOEXEC` (== `O_CLOEXEC`, octal `02000000`).
    pub const CLOEXEC: c_int = 0x8_0000;
    /// `EFD_NONBLOCK` (== `O_NONBLOCK`, octal `04000`).
    pub const EFD_NONBLOCK: c_int = 0x800;

    /// `struct epoll_event`. The kernel declares it packed on x86, with
    /// natural alignment elsewhere — the `cfg_attr` mirrors glibc's
    /// `__EPOLL_PACKED`.
    #[repr(C)]
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    /// `SOL_SOCKET`.
    pub const SOL_SOCKET: c_int = 1;
    /// `SO_SNDBUF`.
    pub const SO_SNDBUF: c_int = 7;
    /// `SO_RCVBUF`.
    pub const SO_RCVBUF: c_int = 8;

    /// `SIGINT`.
    pub const SIGINT: c_int = 2;
    /// `SIGTERM`.
    pub const SIGTERM: c_int = 15;
    /// `SIG_ERR` as returned by `signal(2)`.
    pub const SIG_ERR: usize = usize::MAX;

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn signal(signum: c_int, handler: usize) -> usize;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        pub fn eventfd(initval: c_uint, flags: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        pub fn close(fd: c_int) -> c_int;
        pub fn setsockopt(
            fd: c_int,
            level: c_int,
            optname: c_int,
            optval: *const c_void,
            optlen: u32,
        ) -> c_int;
    }
}

/// Which readiness classes a registration asks for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer hung up).
    pub read: bool,
    /// Wake when the fd is writable.
    pub write: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest {
        read: true,
        write: false,
    };
    /// Write-only interest.
    pub const WRITE: Interest = Interest {
        read: false,
        write: true,
    };
    /// Both directions.
    pub const BOTH: Interest = Interest {
        read: true,
        write: true,
    };

    fn mask(self) -> u32 {
        // RDHUP rides with read interest only: a caller that suspended
        // reads (e.g. for write backpressure) must not spin on a
        // level-triggered half-close it is deliberately not consuming.
        let mut m = 0;
        if self.read {
            m |= sys::EPOLLIN | sys::EPOLLRDHUP;
        }
        if self.write {
            m |= sys::EPOLLOUT;
        }
        m
    }
}

/// One readiness notification out of [`Poller::wait`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// The fd has data to read, or the peer closed its write half (a
    /// read will observe the EOF).
    pub readable: bool,
    /// The fd can accept writes.
    pub writable: bool,
    /// The fd is in an error or hang-up state; reads/writes will surface
    /// the concrete error. Reported even when not subscribed.
    pub error: bool,
}

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// Clamps a socket's kernel buffer sizes (`SO_SNDBUF` / `SO_RCVBUF`;
/// `None` leaves that direction at the kernel default). The kernel
/// doubles the requested value for bookkeeping and enforces a floor of a
/// few KiB. Bounding these limits how much data the kernel absorbs on
/// behalf of a peer that has stopped consuming — it turns "the network
/// buffers it" into visible backpressure, which servers (and
/// backpressure tests) rely on.
///
/// # Errors
///
/// Propagates `setsockopt` failure.
pub fn set_socket_buffers(fd: RawFd, send: Option<usize>, recv: Option<usize>) -> io::Result<()> {
    for (opt, bytes) in [(sys::SO_SNDBUF, send), (sys::SO_RCVBUF, recv)] {
        let Some(bytes) = bytes else { continue };
        let val: i32 = i32::try_from(bytes).unwrap_or(i32::MAX);
        // SAFETY: passes a valid i32 and its exact size; the kernel
        // copies the value before returning.
        cvt(unsafe {
            sys::setsockopt(
                fd,
                sys::SOL_SOCKET,
                opt,
                (&val as *const i32).cast(),
                std::mem::size_of::<i32>() as u32,
            )
        })?;
    }
    Ok(())
}

/// A fault a [`Poller`] wait hook may inject before the poller blocks —
/// the seam deterministic chaos tests use to simulate a tardy kernel.
#[derive(Clone, Copy, Debug)]
pub enum WaitFault {
    /// Sleep this long before entering the wait — a delayed wakeup: every
    /// readiness notification in that window is delivered late, together.
    Delay(Duration),
}

type WaitHook = Box<dyn FnMut() -> Option<WaitFault> + Send>;

/// A level-triggered readiness queue over `epoll(7)`.
pub struct Poller {
    epfd: RawFd,
    /// Optional fault-injection hook consulted before every wait. The
    /// `AtomicBool` keeps the no-hook fast path to one relaxed load — no
    /// lock is ever taken unless a hook was installed.
    hook_armed: AtomicBool,
    wait_hook: Mutex<Option<WaitHook>>,
}

impl std::fmt::Debug for Poller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Poller")
            .field("epfd", &self.epfd)
            .field("hook_armed", &self.hook_armed.load(Ordering::Relaxed))
            .finish()
    }
}

impl Poller {
    /// Creates the epoll instance (close-on-exec).
    ///
    /// # Errors
    ///
    /// Propagates `epoll_create1` failure (fd exhaustion, mostly).
    pub fn new() -> io::Result<Poller> {
        // SAFETY: no pointers involved; an invalid flag would just error.
        let epfd = cvt(unsafe { sys::epoll_create1(sys::CLOEXEC) })?;
        Ok(Poller {
            epfd,
            hook_armed: AtomicBool::new(false),
            wait_hook: Mutex::new(None),
        })
    }

    /// Installs a fault-injection hook consulted before every
    /// [`wait`](Self::wait). Returning `Some(WaitFault)` injects that
    /// fault; `None` waits normally. When no hook is installed the cost
    /// on the wait path is a single relaxed atomic load.
    pub fn set_wait_hook(&self, hook: Box<dyn FnMut() -> Option<WaitFault> + Send>) {
        *self.wait_hook.lock().expect("wait hook lock poisoned") = Some(hook);
        self.hook_armed.store(true, Ordering::Release);
    }

    fn ctl(&self, op: i32, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let mut ev = sys::EpollEvent {
            events: interest.mask(),
            data: token,
        };
        // SAFETY: `ev` is a valid epoll_event for the duration of the
        // call; the kernel copies it out before returning.
        cvt(unsafe { sys::epoll_ctl(self.epfd, op, fd, &mut ev) })?;
        Ok(())
    }

    /// Registers `fd` under `token` with the given interest. The caller
    /// keeps ownership of the fd and must keep it open while registered.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failure (`EEXIST` for a double add,
    /// `EBADF` for a closed fd, …).
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, fd, token, interest)
    }

    /// Replaces the interest (and token) of an already-registered fd.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failure (`ENOENT` when never added).
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, fd, token, interest)
    }

    /// Unregisters an fd. Closing the fd deregisters it implicitly; this
    /// is the orderly path for fds that stay open.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failure.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        let mut ev = sys::EpollEvent { events: 0, data: 0 };
        // SAFETY: a non-null event pointer keeps pre-2.6.9 kernels happy;
        // the kernel ignores its contents for EPOLL_CTL_DEL.
        cvt(unsafe { sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_DEL, fd, &mut ev) })?;
        Ok(())
    }

    /// Blocks until at least one registered fd is ready (or `timeout`
    /// elapses), appending the notifications to `out` (cleared first).
    /// `None` blocks indefinitely. `EINTR` is retried internally.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_wait` failure.
    pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        if self.hook_armed.load(Ordering::Relaxed) {
            let fault = self
                .wait_hook
                .lock()
                .expect("wait hook lock poisoned")
                .as_mut()
                .and_then(|hook| hook());
            match fault {
                Some(WaitFault::Delay(d)) => std::thread::sleep(d),
                None => {}
            }
        }
        out.clear();
        let mut buf = [sys::EpollEvent { events: 0, data: 0 }; 256];
        let timeout_ms: i32 = match timeout {
            None => -1,
            // Round up so a 100µs timeout does not spin at zero.
            Some(t) => i32::try_from(t.as_millis().max(u128::from(u32::from(!t.is_zero()))))
                .unwrap_or(i32::MAX),
        };
        let n = loop {
            // SAFETY: `buf` is valid writable storage for `buf.len()`
            // epoll_event records for the duration of the call.
            match cvt(unsafe {
                sys::epoll_wait(self.epfd, buf.as_mut_ptr(), buf.len() as i32, timeout_ms)
            }) {
                Ok(n) => break n as usize,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        };
        for ev in &buf[..n] {
            let bits = ev.events;
            out.push(Event {
                token: ev.data,
                readable: bits & (sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLHUP) != 0,
                writable: bits & sys::EPOLLOUT != 0,
                error: bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0,
            });
        }
        Ok(())
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        // SAFETY: `epfd` is a descriptor this struct owns exclusively.
        unsafe { sys::close(self.epfd) };
    }
}

/// A cross-thread wake-up for a [`Poller`], backed by a nonblocking
/// `eventfd(2)`. Register it read-interested under a reserved token;
/// [`Waker::wake`] from any thread makes the poller's `wait` return.
#[derive(Debug)]
pub struct Waker {
    fd: RawFd,
}

// SAFETY: the wrapped fd is just an integer; eventfd reads/writes are
// atomic and thread-safe by kernel contract.
unsafe impl Send for Waker {}
unsafe impl Sync for Waker {}

impl Waker {
    /// Creates the eventfd (close-on-exec, nonblocking).
    ///
    /// # Errors
    ///
    /// Propagates `eventfd` failure.
    pub fn new() -> io::Result<Waker> {
        // SAFETY: no pointers involved.
        let fd = cvt(unsafe { sys::eventfd(0, sys::CLOEXEC | sys::EFD_NONBLOCK) })?;
        Ok(Waker { fd })
    }

    /// Makes the registered poller's `wait` return. Wake-ups coalesce:
    /// any number of calls before the next [`Waker::drain`] produce one
    /// readable state.
    ///
    /// # Errors
    ///
    /// Propagates the write failure (practically impossible: the
    /// counter saturates long past any realistic wake count).
    pub fn wake(&self) -> io::Result<()> {
        let one: u64 = 1;
        // SAFETY: writes 8 bytes from a valid local; eventfd consumes
        // exactly u64-sized writes.
        let n = unsafe { sys::write(self.fd, (&one as *const u64).cast(), 8) };
        if n == 8 {
            Ok(())
        } else {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::WouldBlock {
                // Counter saturated — the poller is awake regardless.
                Ok(())
            } else {
                Err(e)
            }
        }
    }

    /// Clears the pending wake-up state so a level-triggered poller does
    /// not spin. Call on every notification for the waker's token.
    pub fn drain(&self) {
        let mut buf = 0u64;
        // SAFETY: reads at most 8 bytes into a valid local.
        unsafe { sys::read(self.fd, (&mut buf as *mut u64).cast(), 8) };
    }
}

impl AsRawFd for Waker {
    fn as_raw_fd(&self) -> RawFd {
        self.fd
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        // SAFETY: `fd` is a descriptor this struct owns exclusively.
        unsafe { sys::close(self.fd) };
    }
}

/// Process-wide flag set by the [`install_shutdown_flag`] signal handler.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_shutdown_signal(_signum: std::os::raw::c_int) {
    // Only async-signal-safe work: a single relaxed atomic store.
    SHUTDOWN.store(true, Ordering::Relaxed);
}

/// Installs `SIGINT`/`SIGTERM` handlers that set a process-wide flag
/// readable via [`shutdown_requested`], so a server can drain gracefully
/// instead of dying mid-request. Idempotent; the handler does nothing but
/// one atomic store (async-signal-safe by construction).
///
/// # Errors
///
/// Propagates `signal(2)` failure (`SIG_ERR`).
pub fn install_shutdown_flag() -> io::Result<()> {
    for signum in [sys::SIGINT, sys::SIGTERM] {
        // SAFETY: registers an `extern "C"` handler that only performs an
        // atomic store; `signal(2)` copies nothing from us.
        let prev = unsafe { sys::signal(signum, on_shutdown_signal as *const () as usize) };
        if prev == sys::SIG_ERR {
            return Err(io::Error::last_os_error());
        }
    }
    Ok(())
}

/// Whether a `SIGINT`/`SIGTERM` arrived since [`install_shutdown_flag`].
/// The flag latches: it never resets within the process.
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    const T_LISTEN: u64 = 1;
    const T_CONN: u64 = 2;
    const T_WAKE: u64 = 3;

    #[test]
    fn waker_wakes_and_drains() {
        let poller = Poller::new().expect("epoll");
        let waker = Waker::new().expect("eventfd");
        poller
            .add(waker.as_raw_fd(), T_WAKE, Interest::READ)
            .expect("add");

        let mut events = Vec::new();
        // Nothing pending: a bounded wait times out empty.
        poller
            .wait(&mut events, Some(Duration::from_millis(5)))
            .expect("wait");
        assert!(events.is_empty());

        waker.wake().expect("wake");
        waker.wake().expect("coalesced wake");
        poller.wait(&mut events, None).expect("wait");
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, T_WAKE);
        assert!(events[0].readable);

        waker.drain();
        poller
            .wait(&mut events, Some(Duration::from_millis(5)))
            .expect("wait");
        assert!(events.is_empty(), "drain must clear the wake state");
    }

    #[test]
    fn socket_readiness_and_interest_modification() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        listener.set_nonblocking(true).expect("nonblocking");
        let poller = Poller::new().expect("epoll");
        poller
            .add(listener.as_raw_fd(), T_LISTEN, Interest::READ)
            .expect("add listener");

        let mut client = TcpStream::connect(listener.local_addr().unwrap()).expect("connect");
        let mut events = Vec::new();
        poller.wait(&mut events, None).expect("wait");
        assert!(events.iter().any(|e| e.token == T_LISTEN && e.readable));

        let (server_side, _) = listener.accept().expect("accept");
        server_side.set_nonblocking(true).expect("nonblocking");
        poller
            .add(server_side.as_raw_fd(), T_CONN, Interest::BOTH)
            .expect("add conn");

        // A fresh socket with an empty send buffer is writable at once.
        poller.wait(&mut events, None).expect("wait");
        assert!(events.iter().any(|e| e.token == T_CONN && e.writable));

        // Drop write interest, send data: only readability remains.
        poller
            .modify(server_side.as_raw_fd(), T_CONN, Interest::READ)
            .expect("modify");
        client.write_all(b"ping").expect("write");
        poller.wait(&mut events, None).expect("wait");
        let ev = events
            .iter()
            .find(|e| e.token == T_CONN)
            .expect("conn event");
        assert!(ev.readable);
        assert!(!ev.writable);
        let mut buf = [0u8; 8];
        let n = (&server_side).read(&mut buf).expect("read");
        assert_eq!(&buf[..n], b"ping");

        // Peer hang-up surfaces as readable (EOF on read).
        drop(client);
        poller.wait(&mut events, None).expect("wait");
        assert!(events.iter().any(|e| e.token == T_CONN && e.readable));
        assert_eq!((&server_side).read(&mut buf).expect("eof"), 0);

        poller.delete(server_side.as_raw_fd()).expect("delete");
        poller.delete(listener.as_raw_fd()).expect("delete");
    }

    #[test]
    fn wait_hook_delays_but_preserves_readiness() {
        use std::sync::atomic::AtomicU32;
        use std::sync::Arc;
        use std::time::Instant;

        let poller = Poller::new().expect("epoll");
        let waker = Waker::new().expect("eventfd");
        poller
            .add(waker.as_raw_fd(), T_WAKE, Interest::READ)
            .expect("add");

        let calls = Arc::new(AtomicU32::new(0));
        let seen = Arc::clone(&calls);
        poller.set_wait_hook(Box::new(move || {
            if seen.fetch_add(1, Ordering::Relaxed) == 0 {
                Some(WaitFault::Delay(Duration::from_millis(5)))
            } else {
                None
            }
        }));

        waker.wake().expect("wake");
        let start = Instant::now();
        let mut events = Vec::new();
        poller.wait(&mut events, None).expect("wait");
        assert!(
            start.elapsed() >= Duration::from_millis(5),
            "first wait must absorb the injected delay"
        );
        assert_eq!(events.len(), 1, "readiness survives the delayed wakeup");
        assert_eq!(events[0].token, T_WAKE);
        assert!(calls.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn shutdown_flag_defaults_off_and_installs() {
        install_shutdown_flag().expect("install handlers");
        assert!(!shutdown_requested(), "no signal delivered yet");
    }

    #[test]
    fn delete_then_close_is_orderly_and_double_add_errors() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let poller = Poller::new().expect("epoll");
        poller
            .add(listener.as_raw_fd(), T_LISTEN, Interest::READ)
            .expect("add");
        assert!(
            poller
                .add(listener.as_raw_fd(), T_LISTEN, Interest::READ)
                .is_err(),
            "double add must be rejected"
        );
        poller.delete(listener.as_raw_fd()).expect("delete");
        assert!(
            poller.delete(listener.as_raw_fd()).is_err(),
            "double delete must be rejected"
        );
    }
}
