//! Offline stand-in for the [`serde`](https://serde.rs) facade.
//!
//! Re-exports the no-op [`Serialize`] / [`Deserialize`] derives from the
//! in-tree `serde_derive` shim so that `use serde::{Deserialize, Serialize}`
//! and the `#[derive(...)]` annotations across the workspace keep compiling
//! without network access. Swap this path dependency for the real crates.io
//! `serde = { version = "1", features = ["derive"] }` to restore actual
//! serialization support — no source changes needed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};
