//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! bench harness.
//!
//! Implements the slice of the criterion 0.5 API the workspace benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`] and the [`criterion_group!`] / [`criterion_main!`]
//! macros — backed by a plain wall-clock loop: a warm-up phase followed by
//! `sample_size` timed samples, reporting min / median / mean per iteration.
//! No statistics beyond that, no plots, no saved baselines; swap the path
//! dependency for the real crate to get them back.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Registry of `(group/name, median)` pairs recorded by every
/// [`BenchmarkGroup::bench_function`] run in this process, so bench
/// binaries can export machine-readable results (the real criterion
/// writes these to `target/criterion`; this shim hands them back to the
/// caller instead).
fn registry() -> &'static Mutex<Vec<(String, Duration)>> {
    static REGISTRY: OnceLock<Mutex<Vec<(String, Duration)>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Drains and returns every `(group/name, median iteration time)` pair
/// recorded so far, in execution order.
pub fn take_recorded_medians() -> Vec<(String, Duration)> {
    std::mem::take(&mut *registry().lock().unwrap())
}

/// Entry point handed to every bench function. Mirrors `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\nbench group: {name}");
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            _parent: self,
        }
    }
}

/// A named group of benchmarks sharing sampling settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Caps the total time spent collecting samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Sets the untimed warm-up duration before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one benchmark and prints per-iteration timings.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(&self.name, name);
        self
    }

    /// Ends the group. (The real criterion emits summary statistics here.)
    pub fn finish(self) {}
}

/// Timing loop driver passed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, warm-up first, then up to `sample_size` samples or
    /// until the measurement budget runs out — whichever comes first.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time {
            std::hint::black_box(routine());
        }
        let budget_start = Instant::now();
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(t.elapsed());
            if budget_start.elapsed() > self.measurement_time {
                break;
            }
        }
    }

    fn report(&self, group: &str, name: &str) {
        if self.samples.is_empty() {
            println!("  {name}: no samples collected");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
        println!(
            "  {name}: min {min:?} / median {median:?} / mean {mean:?} over {} samples",
            sorted.len()
        );
        registry()
            .lock()
            .unwrap()
            .push((format!("{group}/{name}"), median));
    }
}

/// Declares a bench group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(5)
            .measurement_time(Duration::from_millis(50));
        group.warm_up_time(Duration::from_millis(1));
        let mut ran = 0usize;
        group.bench_function("counts", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        group.finish();
        assert!(ran > 0);
    }
}
