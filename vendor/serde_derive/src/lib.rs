//! Offline stand-in for `serde_derive`.
//!
//! The workspace annotates its data types with
//! `#[derive(Serialize, Deserialize)]` so that swapping in the real serde is
//! a one-line manifest change once the build environment has network access.
//! Until then these derives expand to nothing: the annotations are kept
//! merely declarative, and nothing in the workspace calls serialization at
//! runtime.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use proc_macro::TokenStream;

/// No-op stand-in for `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
