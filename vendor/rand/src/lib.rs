//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build container has no network access, so the workspace vendors the
//! narrow slice of the rand 0.9 API it actually uses: a deterministic
//! [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`], the
//! [`Rng::random`] / [`Rng::random_range`] sampling methods, and
//! Fisher–Yates [`seq::SliceRandom::shuffle`]. The generator is SplitMix64:
//! not cryptographic, but statistically solid for data synthesis, weight
//! initialisation and boosting-by-resampling — and fully reproducible,
//! which the paper-table binaries rely on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A source of random 64-bit words. Mirrors `rand_core::RngCore`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction. Mirrors `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the "standard" distribution of `T`
    /// (uniform over all values for `bool`, uniform in `[0, 1)` for floats).
    fn random<T: SampleStandard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from their standard distribution.
pub trait SampleStandard {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleStandard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits → uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 / (1u32 << 24) as f32
    }
}

/// Types with a uniform distribution over an ordered range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Draws a value in `[low, high)` (or `[low, high]` when `inclusive`).
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let span = (high as i128 - low as i128) + if inclusive { 1 } else { 0 };
                assert!(span > 0, "cannot sample from empty range");
                low + (rng.next_u64() as u128 % span as u128) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                assert!(low < high || (inclusive && low <= high),
                        "cannot sample from empty range");
                let unit = <$t as SampleStandard>::sample_standard(rng);
                let v = low + unit * (high - low);
                // `low + unit * span` can round up to exactly `high` for
                // narrow ranges; keep the half-open contract.
                if inclusive || v < high {
                    v
                } else {
                    high.next_down().max(low)
                }
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

/// Range shapes accepted by [`Rng::random_range`].
pub trait SampleRange<T: SampleUniform> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, *self.start(), *self.end(), true)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::Rng;

    /// Slice shuffling, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

/// The commonly used items, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = rng.random_range(3..17);
            assert!((3..17).contains(&x));
            let f: f32 = rng.random_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&f));
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }
}
